"""E3/E4 -- Figure 3(b,d): loop R & L vs log(frequency) and the ladder fit.

Figure 3(b) shows extracted loop inductance falling and resistance rising
with frequency as return currents redistribute into nearer paths; Figure
3(d) is Krauter's R0/L0/R1/L1 ladder fitted from two frequency samples.

This benchmark sweeps the FastHenry-style extractor over the Figure-3a
structure (signal over a coplanar ground grid), prints the R(f)/L(f)
series, fits the ladder, and reports the ladder's worst interpolation
error against the full sweep.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.report import format_table
from repro.geometry import build_signal_over_grid
from repro.loop import LoopPort, extract_loop_impedance, fit_ladder


@pytest.fixture(scope="module")
def structure():
    return build_signal_over_grid(
        length=1000e-6, signal_width=2e-6, return_width=1e-6,
        pitch=10e-6, returns_per_side=3,
    )


def test_bench_loop_sweep(benchmark, structure, paper_report):
    layout, ports = structure
    port = LoopPort(
        signal=ports["driver"],
        reference=ports["gnd_driver"],
        short_signal=ports["receiver"],
        short_reference=ports["gnd_receiver"],
    )
    freqs = np.logspace(7, 11, 13)

    result = benchmark.pedantic(
        lambda: extract_loop_impedance(
            layout, port, freqs, max_segment_length=250e-6
        ),
        rounds=1, iterations=1,
    )

    ladder = fit_ladder(
        float(freqs[0]), complex(result.impedance[0]),
        float(freqs[-1]), complex(result.impedance[-1]),
    )
    ladder_z = ladder.impedance(freqs)
    rel_err = np.abs(ladder_z - result.impedance) / np.abs(result.impedance)

    rows = [
        [f"{f:.2e}", f"{r:.4f}", f"{l * 1e9:.4f}",
         f"{lr:.4f}", f"{ll * 1e9:.4f}"]
        for f, r, l, lr, ll in zip(
            freqs, result.resistance, result.inductance,
            ladder.resistance(freqs), ladder.inductance(freqs),
        )
    ]
    paper_report(format_table(
        ["frequency [Hz]", "R extracted [ohm]", "L extracted [nH]",
         "R ladder [ohm]", "L ladder [nH]"],
        rows,
        title=(
            "Figure 3(b,d) -- loop R & L vs frequency, extraction vs "
            f"2-point ladder (R0={ladder.r0:.3f} ohm, "
            f"L0={ladder.l0 * 1e9:.4f} nH, R1={ladder.r1:.3f} ohm, "
            f"L1={ladder.l1 * 1e9:.4f} nH); "
            f"worst ladder error {rel_err.max() * 100:.2f}%"
        ),
    ))

    # Figure-3b shape: R monotone up, L monotone down with frequency.
    assert np.all(np.diff(result.resistance) > -1e-9)
    assert np.all(np.diff(result.inductance) < 1e-15)
    assert result.resistance[-1] > 1.2 * result.resistance[0]
    assert result.inductance[0] > 1.02 * result.inductance[-1]
    # The 2-frequency ladder tracks the full sweep within a few percent.
    assert rel_err.max() < 0.10
