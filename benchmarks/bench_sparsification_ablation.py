"""E7 -- Section 4 ablation: sparsification strategies compared.

Reproduces the paper's qualitative ranking of the sparsification options:

* naive truncation loses positive definiteness -- "the sparsified system
  becomes active and can generate energy";
* block-diagonal sparsification "guarantees the sparsified matrix to be
  positive definite" at some accuracy cost;
* the shell (shift-truncate) method yields guaranteed-PD sparse
  approximations;
* the halo (return-limited) rule drops couplings screened by P/G lines;
* the K-matrix tolerates aggressive truncation because of its locality.

For each strategy the benchmark reports retained mutuals, the minimum
eigenvalue (negative = active/non-passive), and the receiver-waveform
error of a driven transient against the dense PEEC reference; unstable
runs are reported as such.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.compare import compare_waveforms
from repro.analysis.report import format_table
from repro.circuit.linalg import SingularCircuitError
from repro.circuit.netlist import GROUND
from repro.circuit.transient import transient_analysis
from repro.circuit.waveforms import Ramp
from repro.extraction.partial_matrix import extract_for_layout
from repro.geometry import build_signal_over_grid
from repro.peec.model import PEECOptions, build_peec_model
from repro.sparsify import (
    BlockDiagonalSparsifier,
    DenseInductance,
    HaloSparsifier,
    KMatrixSparsifier,
    ShellSparsifier,
    TruncationSparsifier,
    min_eigenvalue,
)


@pytest.fixture(scope="module")
def structure():
    # Long, tightly pitched lines: the regime where naive truncation goes
    # indefinite (coupling coefficients cluster near the threshold).
    return build_signal_over_grid(
        length=2000e-6, signal_width=2e-6, return_width=1e-6,
        pitch=2e-6, returns_per_side=4,
    )


def _simulate(structure, sparsifier):
    layout, ports = structure
    model = build_peec_model(
        layout,
        PEECOptions(max_segment_length=250e-6, sparsifier=sparsifier),
    )
    circuit = model.circuit
    drv = model.node_at(ports["driver"])
    rcv = model.node_at(ports["receiver"])
    circuit.add_capacitor("Cload", rcv, GROUND, 25e-15)
    for tap_name in ("gnd_driver", "gnd_receiver"):
        circuit.add_resistor(
            f"Rg_{tap_name}", model.node_at(ports[tap_name]), GROUND, 0.05
        )
    circuit.add_vsource("Vin", "vin", GROUND, Ramp(0.0, 1.0, 20e-12, 40e-12))
    circuit.add_resistor("Rdrv", "vin", drv, 40.0)
    result = transient_analysis(circuit, 0.8e-9, 2e-12, record=[rcv])
    return result.times, result.voltage(rcv)


def test_bench_sparsification_ablation(benchmark, structure, paper_report):
    layout, _ = structure
    # Extract on the same segmentation the simulated circuits use, so the
    # reported eigenvalues describe the matrices actually simulated.
    from repro.geometry.segment import Direction
    from repro.peec.model import _split_segments
    from repro.extraction.partial_matrix import extract_partial_inductance

    split = [
        seg for seg, _, _ in _split_segments(layout, 250e-6)
        if seg.direction != Direction.Z
    ]
    extraction = extract_partial_inductance(split)

    strategies = [
        ("dense (reference)", DenseInductance()),
        ("truncation 0.5", TruncationSparsifier(threshold=0.5)),
        ("block-diagonal x4", BlockDiagonalSparsifier(num_sections=4, axis=0)),
        ("shell r=12um", ShellSparsifier(radius=12e-6)),
        ("halo (return-limited)", HaloSparsifier(supply_nets=("GND",))),
        ("K-matrix 0.02", KMatrixSparsifier(threshold=0.02)),
    ]

    def run_all():
        out = {}
        for name, strategy in strategies:
            blocks = strategy.apply(extraction)
            if blocks.kind == "L":
                matrix = blocks.to_dense(extraction.size)
                mineig = min_eigenvalue(matrix)
            else:
                mineig = min_eigenvalue(blocks.blocks[0][1])
            try:
                times, wave = _simulate(structure, strategy)
                blew_up = bool(np.max(np.abs(wave)) > 100.0) or not np.all(
                    np.isfinite(wave)
                )
            except SingularCircuitError:
                times, wave, blew_up = None, None, True
            out[name] = (blocks, mineig, times, wave, blew_up)
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    _, _, t_ref, v_ref, _ = results["dense (reference)"]

    rows = []
    truncation_unstable = False
    for name, (blocks, mineig, times, wave, blew_up) in results.items():
        if blew_up:
            error = "UNSTABLE"
            if name.startswith("truncation"):
                truncation_unstable = True
        elif wave is None:
            error = "failed"
        else:
            error = f"{compare_waveforms(t_ref, v_ref, times, wave).max_error * 1e3:.2f} mV"
        rows.append([
            name,
            blocks.kind,
            blocks.num_mutuals,
            f"{mineig:.2e}",
            "yes" if mineig > 0 else "NO",
            error,
        ])
    paper_report(format_table(
        ["strategy", "kind", "mutuals kept", "min eigenvalue",
         "passive", "waveform error vs dense"],
        rows,
        title="Section 4 -- sparsification ablation (dense PEEC reference)",
    ))

    # Paper claims, quantified:
    trunc_eig = results["truncation 0.5"][1]
    assert trunc_eig < 0 or truncation_unstable, (
        "expected naive truncation to lose passivity on this topology"
    )
    for safe in ("block-diagonal x4", "shell r=12um",
                 "halo (return-limited)", "K-matrix 0.02"):
        assert results[safe][1] > 0
        assert not results[safe][4]
    # The passive strategies keep fewer mutuals than dense.
    dense_mutuals = results["dense (reference)"][0].num_mutuals
    assert results["block-diagonal x4"][0].num_mutuals < dense_mutuals
    assert results["shell r=12um"][0].num_mutuals < dense_mutuals
    assert results["halo (return-limited)"][0].num_mutuals < dense_mutuals


def test_bench_block_diagonal_tradeoff(benchmark, structure, paper_report):
    """"The section size depends on a trade-off required between run-time
    and accuracy" -- sweep the section count and quantify both sides."""
    import time

    t_ref, v_ref = _simulate(structure, DenseInductance())

    def sweep():
        out = {}
        for sections in (1, 2, 4, 8):
            strategy = BlockDiagonalSparsifier(num_sections=sections, axis=0)
            start = time.perf_counter()
            times, wave = _simulate(structure, strategy)
            elapsed = time.perf_counter() - start
            err = compare_waveforms(t_ref, v_ref, times, wave).max_error
            # Mutual count for the report.
            layout, _ = structure
            from repro.extraction.partial_matrix import extract_for_layout

            extraction, _ = extract_for_layout(layout)
            kept = strategy.apply(extraction).num_mutuals
            out[sections] = (kept, elapsed, err)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        [sections, kept, f"{elapsed:.2f}", f"{err * 1e3:.2f}"]
        for sections, (kept, elapsed, err) in results.items()
    ]
    paper_report(format_table(
        ["sections", "mutuals kept (unsplit)", "build+sim [s]",
         "waveform error [mV]"],
        rows,
        title="Section 4 -- block-diagonal section-count trade-off",
    ))

    # One section = dense (error ~ 0); more sections cut mutuals and grow
    # the error, monotonically at the extremes.
    assert results[1][2] < 1e-6
    assert results[8][0] < results[2][0]
    assert results[8][2] >= results[1][2]
