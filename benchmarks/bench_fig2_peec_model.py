"""E2 -- Figure 2: composition of the detailed PEEC circuit model.

Figure 2 lists the model ingredients: RLC-pi per metal segment, mutual
inductances between all pairs of parallel segments, coupling capacitance
between adjacent lines, via resistances, decap, switching-activity
current sources, and pad R/L.  This benchmark builds the full model over
the grid + clock topology and reports the census -- the element explosion
("mutual inductance of the order of 10G" at production scale) is the
motivation for all of Section 4.
"""

from __future__ import annotations

import pytest

from repro import build_clock_testcase
from repro.analysis.report import format_table
from repro.peec import (
    PEECOptions,
    attach_decaps,
    attach_package,
    attach_switching_activity,
    build_peec_model,
)


@pytest.fixture(scope="module")
def case():
    return build_clock_testcase(
        die=500e-6, stripe_pitch=60e-6, num_branches=3, branch_length=120e-6,
    )


def test_bench_model_build(benchmark, case, paper_report):
    def build():
        model = build_peec_model(
            case.layout, PEECOptions(max_segment_length=80e-6)
        )
        attach_package(model)
        attach_decaps(model, 20e-12, count=8)
        attach_switching_activity(model, num_sources=6)
        return model

    model = benchmark.pedantic(build, rounds=1, iterations=1)
    stats = model.stats()
    layout_stats = case.layout.stats()

    n = stats["inductors"]
    dense_pairs = stats["mutuals"]
    rows = [
        ["metal segments (layout)", layout_stats["segments"]],
        ["vias (layout)", layout_stats["vias"]],
        ["pads (layout)", layout_stats["pads"]],
        ["nodes", stats["nodes"]],
        ["resistances", stats["resistors"]],
        ["capacitances (ground + coupling)", stats["capacitors"]],
        ["partial self inductances", n],
        ["partial mutual inductances", dense_pairs],
        ["pad/package sources", stats["vsources"]],
        ["activity current sources", stats["isources"]],
    ]
    paper_report(format_table(
        ["model ingredient", "count"],
        rows,
        title="Figure 2 -- detailed PEEC model composition",
    ))

    # The dense mutual count must scale ~quadratically with self count:
    # every pair of parallel segments couples.
    assert dense_pairs > n * 10
    assert stats["resistors"] >= layout_stats["segments"]
    assert stats["vsources"] == layout_stats["pads"]
