"""E14 -- Section 7: simultaneous shield insertion and net ordering.

"Coupling noise can be reduced by simultaneously inserting shields and
ordering nets, subject to constraints on area, and bounds on inductive
and capacitive noise.  This optimization problem was found to be NP-hard
and hence was solved by algorithms based on greedy approaches or
simulated annealing."

The benchmark solves a batch of random SINO instances with both solvers
and reports feasibility and the area (track count) each needs -- the
annealer's job is to save shields over the greedy construction.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table
from repro.design.sino import anneal_sino, greedy_sino, is_feasible, random_problem


def test_bench_sino(benchmark, paper_report):
    seeds = tuple(range(8))
    problems = {seed: random_problem(num_nets=10, seed=seed) for seed in seeds}

    def solve_all():
        out = {}
        for seed, problem in problems.items():
            greedy = greedy_sino(problem)
            annealed = anneal_sino(problem, iterations=3000, seed=seed)
            out[seed] = (greedy, annealed)
        return out

    results = benchmark.pedantic(solve_all, rounds=1, iterations=1)

    rows = []
    total_saved = 0
    for seed, (greedy, annealed) in results.items():
        saved = greedy.area - annealed.area
        total_saved += saved
        rows.append([
            seed,
            greedy.area,
            len(greedy.shields_after),
            annealed.area,
            len(annealed.shields_after),
            saved,
        ])
    paper_report(format_table(
        ["instance", "greedy area", "greedy shields", "anneal area",
         "anneal shields", "tracks saved"],
        rows,
        title=(
            "Section 7 -- SINO: greedy vs simulated annealing over 8 "
            f"random 10-net channels (total tracks saved: {total_saved})"
        ),
    ))

    for seed, (greedy, annealed) in results.items():
        problem = problems[seed]
        assert is_feasible(problem, greedy)
        assert is_feasible(problem, annealed)
        assert annealed.area <= greedy.area
    assert total_saved >= 1  # annealing finds at least some savings
