"""E5 -- Figure 4: top-level clock net transient, LOOP vs PEEC.

Figure 4 overlays receiver waveforms from the loop model and the detailed
PEEC model: "In the PEEC model, the delay increased by 10 ps, compared
with the RC model, while in the loop model, the delay increased by 30
ps" -- the loop model overestimates the inductance effect because its
extraction ignores the capacitive return paths.

This benchmark simulates the same edge through PEEC(RC), PEEC(RLC) and
LOOP(RLC) and reports per-sink delays plus the waveform deviation of the
loop model from the detailed one.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import build_clock_testcase, run_loop_flow, run_peec_flow
from repro.analysis.compare import compare_waveforms
from repro.analysis.report import format_table
from repro.constants import to_ps

_RESULTS: dict = {}


@pytest.fixture(scope="module")
def case():
    return build_clock_testcase(
        die=600e-6, stripe_pitch=80e-6, num_branches=3,
        branch_length=160e-6, t_stop=1.0e-9, dt=2e-12,
    )


def test_bench_fig4_waveforms(benchmark, case, paper_report):
    def run_all():
        return {
            "PEEC (RC)": run_peec_flow(case, include_inductance=False),
            "PEEC (RLC)": run_peec_flow(case),
            "LOOP (RLC)": run_loop_flow(case),
        }

    _RESULTS.update(benchmark.pedantic(run_all, rounds=1, iterations=1))
    rc = _RESULTS["PEEC (RC)"]
    rlc = _RESULTS["PEEC (RLC)"]
    loop = _RESULTS["LOOP (RLC)"]

    sink_names = sorted(rlc.delays)
    rows = []
    for name in sink_names:
        rows.append([
            name,
            f"{to_ps(rc.delays[name]):.2f}",
            f"{to_ps(rlc.delays[name]):.2f}",
            f"{to_ps(loop.delays[name]):.2f}",
            f"{to_ps(rlc.delays[name] - rc.delays[name]):+.2f}",
            f"{to_ps(loop.delays[name] - rc.delays[name]):+.2f}",
        ])
    worst = max(
        compare_waveforms(
            rlc.times, rlc.waveforms[name], loop.times, loop.waveforms[name]
        ).max_error
        for name in sink_names
    )
    paper_report(format_table(
        ["sink", "RC delay [ps]", "PEEC delay [ps]", "LOOP delay [ps]",
         "PEEC-RC [ps]", "LOOP-RC [ps]"],
        rows,
        title=(
            "Figure 4 -- clock-edge delays, loop vs PEEC "
            f"(worst loop-vs-PEEC waveform error {worst:.3f} V)"
        ),
    ))

    # Paper shape: inductance adds delay in both inductive models; the
    # loop model's delta is at least comparable to (typically larger
    # than) the detailed model's.
    delta_peec = rlc.worst_delay - rc.worst_delay
    delta_loop = loop.worst_delay - rc.worst_delay
    assert delta_peec > 0
    assert delta_loop > 0.5 * delta_peec
