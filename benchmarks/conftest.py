"""Benchmark-harness support: collect paper-style tables and print them.

Every benchmark registers the table/series it reproduces through the
``paper_report`` fixture; the collected reports are printed in the
terminal summary so a plain ``pytest benchmarks/ --benchmark-only`` run
shows the rows the paper reports (element counts, delays, skews, R/L
series, noise ratios) next to pytest-benchmark's timing table.
"""

from __future__ import annotations

import pytest

_REPORTS: list[str] = []


@pytest.fixture
def paper_report():
    """Callable that registers a formatted report block for the summary."""

    def add(text: str) -> None:
        _REPORTS.append(text)

    return add


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.section("paper reproduction tables")
    for block in _REPORTS:
        terminalreporter.write_line(block)
        terminalreporter.write_line("")
