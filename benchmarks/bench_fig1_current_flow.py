"""E1 -- Figure 1: currents in the driver-receiver-grid topology.

The paper's Figure 1 identifies three current populations when a gate
switches:

    I1 -- short-circuit current flowing from power grid to ground grid
          while the gate is switching,
    I2 -- charging current, flowing from Vdd, for the interconnect and
          gate capacitance between signal line and ground,
    I3 -- discharging current for the interconnect and gate capacitance
          between signal line and power grid,

with the grid-to-grid loops closed "via the package and external supply,
or through the decoupling capacitance between the power and ground
grids."

This benchmark runs a square-law CMOS driver on the clock net over the
grid (decaps and package attached) for both edge polarities and reports
the peak of each population plus the package-loop current.
"""

from __future__ import annotations

import pytest

from repro import build_clock_testcase, run_current_decomposition
from repro.analysis.report import format_table

_RESULTS: dict = {}


@pytest.fixture(scope="module")
def case():
    return build_clock_testcase(
        die=300e-6, stripe_pitch=60e-6, num_branches=2,
        branch_length=80e-6, t_stop=0.8e-9, dt=1e-12,
    )


def test_bench_rising_edge(benchmark, case):
    _RESULTS["rising input (output falls)"] = benchmark.pedantic(
        lambda: run_current_decomposition(case, falling_input=False),
        rounds=1, iterations=1,
    )


def test_bench_falling_edge(benchmark, case, paper_report):
    _RESULTS["falling input (output rises)"] = benchmark.pedantic(
        lambda: run_current_decomposition(case, falling_input=True),
        rounds=1, iterations=1,
    )

    rows = []
    for edge, decomp in _RESULTS.items():
        rows.append([
            edge,
            f"{decomp.peak['I1_short_circuit'] * 1e6:.1f}",
            f"{decomp.peak['I2_charge'] * 1e3:.3f}",
            f"{decomp.peak['I3_discharge'] * 1e3:.3f}",
            f"{decomp.peak['package'] * 1e3:.3f}",
        ])
    paper_report(format_table(
        ["switching edge", "I1 short-circuit [uA]", "I2 charge [mA]",
         "I3 discharge [mA]", "package loop [mA]"],
        rows,
        title="Figure 1 -- current populations at a switching edge",
    ))

    rising = _RESULTS["rising input (output falls)"]
    falling = _RESULTS["falling input (output rises)"]
    # Output falling -> discharge (I3) dominates; output rising -> charge
    # (I2) dominates; crowbar I1 flows in both; the package loop closes
    # the supply current.
    assert rising.peak["I3_discharge"] > rising.peak["I2_charge"]
    assert falling.peak["I2_charge"] > falling.peak["I3_discharge"]
    assert rising.peak["I1_short_circuit"] > 0
    assert falling.peak["package"] > 0
