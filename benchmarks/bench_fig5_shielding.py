"""E9 -- Figure 5: shielding ("S GND CLK GND S").

"Loop inductance can be reduced by sandwiching a signal line between
ground return lines or guard traces.  This forces the high-frequency
current return paths to be close to the signal line, thus minimizing
inductance."  The benchmark sweeps shield spacing and reports loop R/L
against the unshielded baseline.
"""

from __future__ import annotations

import pytest

from repro.analysis.report import format_table
from repro.design.shielding import shielding_study


def test_bench_shielding(benchmark, paper_report):
    results = benchmark.pedantic(
        lambda: shielding_study(
            shield_spacings=(1e-6, 2e-6, 4e-6, 8e-6),
            frequency=2e9,
            length=1000e-6,
        ),
        rounds=1, iterations=1,
    )
    baseline = results[0]
    rows = []
    for r in results:
        label = ("no shields (returns at 25 um)" if r.shield_spacing is None
                 else f"shields at {r.shield_spacing * 1e6:.0f} um")
        rows.append([
            label,
            f"{r.loop_inductance * 1e12:.1f}",
            f"{r.loop_resistance:.3f}",
            f"{r.loop_inductance / baseline.loop_inductance:.2f}",
        ])
    paper_report(format_table(
        ["configuration", "loop L [pH]", "loop R [ohm]", "L / baseline"],
        rows,
        title="Figure 5 -- shielding: loop inductance vs shield spacing",
    ))

    shielded = results[1:]
    # Every shielded configuration beats the baseline...
    assert all(r.loop_inductance < baseline.loop_inductance for r in shielded)
    # ...tighter shields help more...
    inductances = [r.loop_inductance for r in shielded]
    assert inductances == sorted(inductances)
    # ...and the reduction is substantial (paper's point).
    assert shielded[0].loop_inductance < 0.6 * baseline.loop_inductance
