#!/usr/bin/env bash
# Run the perf harness and drop BENCH_<date>.json in the repo root.
#
# Usage:
#   scripts/run_benchmarks.sh              # full Table-1 scale
#   scripts/run_benchmarks.sh --smoke      # CI-sized (seconds)
#   scripts/run_benchmarks.sh --workers 8  # override the pool width
#
# Any extra arguments are passed straight to `repro bench`, so
# `--baseline benchmarks/baseline_smoke.json` turns the run into a
# regression gate.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

python -m repro.cli bench "$@"
