#!/usr/bin/env bash
# Tier-1 gate: unit tests, the repo-specific AST lint, and the electrical
# rule check over every shipped example.  Everything must be green.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 pytest =="
python -m pytest -x -q

echo
echo "== fault-injection chaos pytest (REPRO_FAULTS=chaos-1234) =="
REPRO_FAULTS=chaos-1234 python -m pytest -x -q

echo
echo "== repro.qa.astlint over src =="
python -m repro.qa.astlint src

echo
echo "== repro analyze over src/repro (baseline-ratcheted) =="
# Fails on any finding not in qa/baseline.json; the JSON report is the
# build artifact (inspect it to triage a red gate).
python -m repro.cli analyze src/repro \
    --baseline qa/baseline.json \
    --format json --out /tmp/analyze_ci_report.json > /dev/null
echo "analyze: clean against qa/baseline.json (report: /tmp/analyze_ci_report.json)"

echo
echo "== repro check over the examples =="
python -m repro.cli check examples/*.py

echo
echo "== repro trace smoke (span tree must be complete) =="
python -m repro.cli trace --die 250 --json /tmp/trace_ci_smoke.json

echo
echo "== repro bench --smoke vs checked-in baseline =="
python -m repro.cli bench --smoke --out /tmp/bench_ci_smoke.json \
    --baseline benchmarks/baseline_smoke.json --max-regression 2.0

echo
echo "== repro sweep --smoke (serial and sharded must be bit-identical) =="
python -m repro.cli sweep --smoke --workers 1 --no-resume \
    --store /tmp/sweep_ci_serial --out /tmp/sweep_ci_serial.json
python -m repro.cli sweep --smoke --workers 2 --no-resume \
    --store /tmp/sweep_ci_sharded --out /tmp/sweep_ci_sharded.json
cmp /tmp/sweep_ci_serial.json /tmp/sweep_ci_sharded.json

echo
echo "ci_checks: all green"
