#!/usr/bin/env bash
# Tier-1 gate: unit tests, the repo-specific AST lint, and the electrical
# rule check over every shipped example.  Everything must be green.
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 pytest =="
python -m pytest -x -q

echo
echo "== fault-injection chaos pytest (REPRO_FAULTS=chaos-1234) =="
# REPRO_HANG_SECONDS=2 keeps the rare chaos 'hang' faults short enough
# for the suite's own deadlines.
REPRO_FAULTS=chaos-1234 REPRO_HANG_SECONDS=2 python -m pytest -x -q

echo
echo "== repro.qa.astlint over src =="
python -m repro.qa.astlint src

echo
echo "== repro analyze over src/repro (baseline-ratcheted) =="
# Fails on any finding not in qa/baseline.json; the JSON report is the
# build artifact (inspect it to triage a red gate).
python -m repro.cli analyze src/repro \
    --baseline qa/baseline.json \
    --format json --out /tmp/analyze_ci_report.json > /dev/null
echo "analyze: clean against qa/baseline.json (report: /tmp/analyze_ci_report.json)"

echo
echo "== repro check over the examples =="
python -m repro.cli check examples/*.py

echo
echo "== repro trace smoke (span tree must be complete) =="
python -m repro.cli trace --die 250 --json /tmp/trace_ci_smoke.json

echo
echo "== repro bench --smoke vs checked-in baseline =="
python -m repro.cli bench --smoke --out /tmp/bench_ci_smoke.json \
    --baseline benchmarks/baseline_smoke.json --max-regression 2.0

echo
echo "== hierarchical-vs-exact smoke gate (ACA error + passivity) =="
# compare_benchmarks already gates these when the baseline has the
# section; this asserts them directly so the gate cannot silently lapse
# if the baseline section is ever dropped.
python - <<'PY'
import json
hier = json.load(open("/tmp/bench_ci_smoke.json"))["sections"]["hierarchical"]
assert hier["max_rel_error"] <= 1e-3, \
    f"hierarchical error {hier['max_rel_error']:.3e} exceeds 1e-3"
assert hier["spd_ok"] is True, "hierarchical materialization not SPD"
print(f"hierarchical smoke: n={hier['n']} err={hier['max_rel_error']:.2e} "
      f"spd_ok={hier['spd_ok']} speedup={hier.get('speedup')}")
PY

echo
echo "== iterative-vs-dense smoke gate (matrix-free solve path) =="
# The Krylov tier must solve the hierarchical extraction without ever
# materializing L (to_dense_calls == 0) and without falling back to the
# dense direct rung, while matching the dense sweep to 1e-6.
python - <<'PY'
import json
it = json.load(open("/tmp/bench_ci_smoke.json"))["sections"]["solve_iterative"]
assert it["max_rel_error"] <= 1e-6, \
    f"iterative solve error {it['max_rel_error']:.3e} exceeds 1e-6"
assert it["to_dense_calls"] == 0, \
    f"hierarchical operator densified {it['to_dense_calls']} time(s)"
assert it["krylov_fallbacks"] == 0, \
    f"{it['krylov_fallbacks']} Krylov solve(s) fell back to dense direct"
print(f"solve_iterative smoke: err={it['max_rel_error']:.2e} "
      f"gmres_iters={it['krylov_iterations']} "
      f"operator_bytes={it['operator_bytes']}")
PY

echo
echo "== repro sweep --smoke (serial and sharded must be bit-identical) =="
python -m repro.cli sweep --smoke --workers 1 --no-resume \
    --store /tmp/sweep_ci_serial --out /tmp/sweep_ci_serial.json
python -m repro.cli sweep --smoke --workers 2 --no-resume \
    --store /tmp/sweep_ci_sharded --out /tmp/sweep_ci_sharded.json
cmp /tmp/sweep_ci_serial.json /tmp/sweep_ci_sharded.json

echo
echo "== chaos-hang sweep (hung workers must be quarantined, never stall) =="
# Every pool worker hangs for 120s, far past the 2s chunk deadline.  The
# supervisor must kill the hung workers, quarantine (or serially finish)
# the affected scenarios, and exit 0 -- well inside the coreutils
# timeout(1) backstop.
REPRO_FAULTS='*.worker=hang' REPRO_HANG_SECONDS=120 \
timeout 300 python -m repro.cli sweep --smoke --no-resume --workers 2 \
    --deadline 2 --out /tmp/sweep_ci_hang.json | tee /tmp/sweep_ci_hang.log
grep -q "quarantined" /tmp/sweep_ci_hang.log
if grep -q " 0 quarantined" /tmp/sweep_ci_hang.log; then
    echo "chaos-hang sweep: expected at least one quarantined scenario" >&2
    exit 1
fi

echo
echo "ci_checks: all green"
