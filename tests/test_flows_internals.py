"""Flow-layer internals and edge cases."""

import numpy as np
import pytest

from repro.flows import (
    ClockNetTestCase,
    _gnd_tap_near,
    _measure,
    _rc_package,
    build_clock_testcase,
)


class TestTestcaseBuilder:
    def test_clock_never_overlaps_grid(self):
        for die in (250e-6, 400e-6, 550e-6):
            case = build_clock_testcase(die=die)
            assert case.layout.find_overlaps(net="clk") == []

    def test_htree_never_overlaps_grid(self):
        for die in (250e-6, 400e-6):
            case = build_clock_testcase(topology="htree", die=die)
            assert case.layout.find_overlaps(net="clk") == []

    def test_input_ramp_spans_rails(self):
        case = build_clock_testcase(die=250e-6, vdd=1.5)
        ramp = case.input_ramp
        assert ramp(0.0) == 0.0
        assert ramp(1.0) == 1.5

    def test_kwargs_forwarded(self):
        case = build_clock_testcase(die=250e-6, t_stop=0.5e-9, dt=1e-12,
                                    load_capacitance=50e-15)
        assert case.t_stop == 0.5e-9
        assert case.load_capacitance == 50e-15


class TestHelpers:
    def test_gnd_tap_near_finds_nearest_terminal(self):
        case = build_clock_testcase(die=250e-6)
        tap = _gnd_tap_near(case.layout, 0.0, 0.0)
        assert tap.net == "GND"
        # The nearest ground terminal to the die corner is near it.
        assert abs(tap.x) < 50e-6 and abs(tap.y) < 50e-6

    def test_gnd_tap_near_rejects_missing_net(self):
        case = build_clock_testcase(die=250e-6)
        with pytest.raises(ValueError):
            _gnd_tap_near(case.layout, 0.0, 0.0, ground_net="nope")

    def test_rc_package_has_negligible_inductance(self):
        spec = _rc_package()
        assert spec.inductance < 1e-12

    def test_measure_delay_and_skew(self):
        case = build_clock_testcase(die=250e-6)
        times = np.linspace(0, 1e-9, 501)
        ramp = case.input_ramp
        # Two synthetic sink waveforms: shifted copies of the input.
        def shifted(delta):
            return np.array([ramp(t - delta) for t in times])

        delays, worst, sk = _measure(
            case, times, {"s0": shifted(10e-12), "s1": shifted(25e-12)}
        )
        assert delays["s0"] == pytest.approx(10e-12, abs=1e-12)
        assert delays["s1"] == pytest.approx(25e-12, abs=1e-12)
        assert worst == pytest.approx(25e-12, abs=1e-12)
        assert sk == pytest.approx(15e-12, abs=1e-12)


class TestOverlapDetector:
    def test_detects_injected_overlap(self):
        from repro.geometry.layout import Layout, NetKind
        from repro.geometry.segment import Direction, default_layer_stack

        layout = Layout(default_layer_stack(6))
        layout.add_net("a", NetKind.SIGNAL)
        layout.add_net("b", NetKind.SIGNAL)
        layout.add_wire("a", "M6", Direction.X, (0.0, 0.0), 100e-6, 4e-6)
        layout.add_wire("b", "M6", Direction.X, (50e-6, 2e-6), 100e-6, 4e-6)
        overlaps = layout.find_overlaps()
        assert overlaps

    def test_same_net_overlap_ignored(self):
        from repro.geometry.layout import Layout, NetKind
        from repro.geometry.segment import Direction, default_layer_stack

        layout = Layout(default_layer_stack(6))
        layout.add_net("a", NetKind.SIGNAL)
        layout.add_wire("a", "M6", Direction.X, (0.0, 0.0), 100e-6, 4e-6)
        layout.add_wire("a", "M6", Direction.X, (50e-6, 2e-6), 100e-6, 4e-6)
        assert layout.find_overlaps() == []

    def test_different_layers_do_not_overlap(self):
        from repro.geometry.layout import Layout, NetKind
        from repro.geometry.segment import Direction, default_layer_stack

        layout = Layout(default_layer_stack(6))
        layout.add_net("a", NetKind.SIGNAL)
        layout.add_net("b", NetKind.SIGNAL)
        layout.add_wire("a", "M5", Direction.X, (0.0, 0.0), 100e-6, 4e-6)
        layout.add_wire("b", "M6", Direction.X, (0.0, 0.0), 100e-6, 4e-6)
        assert layout.find_overlaps() == []
