"""Command-line interface."""

import pytest

from repro.cli import main


@pytest.mark.slow
class TestCLI:
    def test_table1_runs(self, capsys):
        assert main(["table1", "--die", "250", "--branches", "2"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "PEEC (RLC)" in out

    def test_loop_runs(self, capsys):
        assert main(["loop", "--length", "300"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3(b)" in out
        assert "ladder" in out

    def test_export_writes_deck(self, tmp_path, capsys):
        out_file = tmp_path / "net.sp"
        assert main(["export", "--out", str(out_file)]) == 0
        deck = out_file.read_text()
        assert deck.rstrip().endswith(".end")
        assert ".tran" in deck

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["bogus"])

    def test_trace_smoke(self, tmp_path, capsys):
        out_file = tmp_path / "trace.json"
        assert main(["trace", "--die", "250", "--json", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "flow.peec" in out
        assert "trace: ok" in out

        import json

        payload = json.loads(out_file.read_text())
        assert payload["open_spans"] == 0
        names = set()

        def walk(node):
            names.add(node["name"])
            for child in node.get("children", []):
                walk(child)

        for root in payload["spans"]:
            walk(root)
        assert {"flow.peec", "peec.assembly", "circuit.transient"} <= names
        # The headline metrics are always present, even when zero.
        counters = payload["metrics"]["counters"]
        assert "extraction.cache.misses" in counters
        assert "solver.escalated_solves" in counters

    def test_run_is_an_alias_of_table1(self, capsys):
        assert main(["run", "--die", "250", "--branches", "2"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_trace_json_wraps_a_command(self, tmp_path, capsys):
        import json

        out_file = tmp_path / "loop_trace.json"
        assert main(["loop", "--length", "300",
                     "--trace-json", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "Figure 3(b)" in out
        assert str(out_file) in out
        payload = json.loads(out_file.read_text())
        assert payload["open_spans"] == 0
        roots = [s["name"] for s in payload["spans"]]
        assert "loop.build" in roots
        assert "loop.sweep" in roots
