"""Command-line interface."""

import pytest

from repro.cli import main


@pytest.mark.slow
class TestCLI:
    def test_table1_runs(self, capsys):
        assert main(["table1", "--die", "250", "--branches", "2"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "PEEC (RLC)" in out

    def test_loop_runs(self, capsys):
        assert main(["loop", "--length", "300"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3(b)" in out
        assert "ladder" in out

    def test_export_writes_deck(self, tmp_path, capsys):
        out_file = tmp_path / "net.sp"
        assert main(["export", "--out", str(out_file)]) == 0
        deck = out_file.read_text()
        assert deck.rstrip().endswith(".end")
        assert ".tran" in deck

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["bogus"])
