"""Command-line interface."""

import pytest

from repro.cli import main


@pytest.mark.slow
class TestCLI:
    def test_table1_runs(self, capsys):
        assert main(["table1", "--die", "250", "--branches", "2"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "PEEC (RLC)" in out

    def test_loop_runs(self, capsys):
        assert main(["loop", "--length", "300"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3(b)" in out
        assert "ladder" in out

    def test_export_writes_deck(self, tmp_path, capsys):
        out_file = tmp_path / "net.sp"
        assert main(["export", "--out", str(out_file)]) == 0
        deck = out_file.read_text()
        assert deck.rstrip().endswith(".end")
        assert ".tran" in deck

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["bogus"])

    def test_trace_smoke(self, tmp_path, capsys):
        out_file = tmp_path / "trace.json"
        assert main(["trace", "--die", "250", "--json", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "flow.peec" in out
        assert "trace: ok" in out

        import json

        payload = json.loads(out_file.read_text())
        assert payload["open_spans"] == 0
        names = set()

        def walk(node):
            names.add(node["name"])
            for child in node.get("children", []):
                walk(child)

        for root in payload["spans"]:
            walk(root)
        assert {"flow.peec", "peec.assembly", "circuit.transient"} <= names
        # The headline metrics are always present, even when zero.
        counters = payload["metrics"]["counters"]
        assert "extraction.cache.misses" in counters
        assert "solver.escalated_solves" in counters

    def test_run_is_an_alias_of_table1(self, capsys):
        assert main(["run", "--die", "250", "--branches", "2"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_trace_json_wraps_a_command(self, tmp_path, capsys):
        import json

        out_file = tmp_path / "loop_trace.json"
        assert main(["loop", "--length", "300",
                     "--trace-json", str(out_file)]) == 0
        out = capsys.readouterr().out
        assert "Figure 3(b)" in out
        assert str(out_file) in out
        payload = json.loads(out_file.read_text())
        assert payload["open_spans"] == 0
        roots = [s["name"] for s in payload["spans"]]
        assert "loop.build" in roots
        assert "loop.sweep" in roots


@pytest.mark.slow
class TestSweepCLI:
    def test_smoke_runs(self, capsys):
        from repro.resilience.faults import inject_faults

        with inject_faults():
            assert main(["sweep", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "scenario sweep -- smoke" in out
        assert "4 ok, 0 failed" in out

    def test_supervision_flags_accepted(self, capsys):
        from repro.resilience.faults import inject_faults

        with inject_faults():
            assert main(["sweep", "--smoke", "--deadline", "30",
                         "--time-budget", "300"]) == 0
        out = capsys.readouterr().out
        assert "0 quarantined" in out

    def test_bad_supervision_env_exits_2(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_DEADLINE", "soon")
        assert main(["sweep", "--smoke"]) == 2
        assert "REPRO_DEADLINE" in capsys.readouterr().out

    def test_bad_deadline_flag_exits_2(self, capsys):
        assert main(["sweep", "--smoke", "--deadline", "-1"]) == 2
        assert "deadline must be positive" in capsys.readouterr().out

    def test_needs_spec_or_smoke(self, capsys):
        assert main(["sweep"]) == 2
        assert "need a spec file or --smoke" in capsys.readouterr().out

    def test_bad_spec_reports_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["sweep", str(bad)]) == 2
        assert "cannot read" in capsys.readouterr().out

    def test_spec_file_runs(self, tmp_path, capsys):
        import json

        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({
            "name": "mini",
            "defaults": {"length": 100e-6, "t_stop": 0.6e-9},
            "grid": {"variant": ["baseline", "ground_plane"]},
        }))
        from repro.resilience.faults import inject_faults

        with inject_faults():
            assert main(["sweep", str(spec)]) == 0
        out = capsys.readouterr().out
        assert "scenario sweep -- mini" in out
        assert "2 ok" in out

    def test_sharded_smoke_matches_serial(self, tmp_path, capsys):
        from repro.resilience.faults import inject_faults

        serial_out = tmp_path / "serial.json"
        sharded_out = tmp_path / "sharded.json"
        with inject_faults():
            assert main(["sweep", "--smoke", "--workers", "1",
                         "--out", str(serial_out)]) == 0
            assert main(["sweep", "--smoke", "--workers", "2",
                         "--out", str(sharded_out)]) == 0
        capsys.readouterr()
        assert serial_out.read_bytes() == sharded_out.read_bytes()

    def test_resume_from_store(self, tmp_path, capsys):
        from repro.resilience.faults import inject_faults

        store = tmp_path / "store"
        with inject_faults():
            assert main(["sweep", "--smoke", "--store", str(store)]) == 0
            capsys.readouterr()
            assert main(["sweep", "--smoke", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "4 resumed, 0 computed" in out

    def test_trace_json_wraps_sweep(self, tmp_path, capsys):
        import json

        from repro.resilience.faults import inject_faults

        trace = tmp_path / "sweep_trace.json"
        with inject_faults():
            assert main(["sweep", "--smoke", "--trace-json",
                         str(trace)]) == 0
        capsys.readouterr()
        payload = json.loads(trace.read_text())
        names = set()

        def walk(node):
            names.add(node["name"])
            for child in node.get("children", []):
                walk(child)

        for root in payload["spans"]:
            walk(root)
        assert {"sweep.scenarios", "sweep.shard", "sweep.scenario"} <= names
        counters = payload["metrics"]["counters"]
        assert counters.get("sweep.scenarios.ok") == 4
