"""Shared fixtures: small layouts and cached extractions for speed."""

from __future__ import annotations

import numpy as np
import pytest

from repro.extraction.partial_matrix import extract_for_layout
from repro.geometry import (
    ClockNetSpec,
    PowerGridSpec,
    build_clock_net,
    build_power_grid,
    build_signal_over_grid,
    default_layer_stack,
)


@pytest.fixture(scope="session")
def layer_stack():
    return default_layer_stack(6)


@pytest.fixture(scope="session")
def small_grid_layout(layer_stack):
    """A tiny stitched 2-layer power grid with pads."""
    spec = PowerGridSpec(
        die_width=120e-6,
        die_height=120e-6,
        layer_names=("M5", "M6"),
        stripe_pitch=40e-6,
        stripe_width=2e-6,
        pads_per_net=1,
    )
    return build_power_grid(spec, list(layer_stack))


@pytest.fixture(scope="session")
def grid_with_clock(layer_stack):
    """Grid + clock net + ports: the Table-1 topology at mini scale."""
    spec = PowerGridSpec(
        die_width=160e-6,
        die_height=160e-6,
        layer_names=("M5", "M6"),
        stripe_pitch=40e-6,
        stripe_width=2e-6,
        pads_per_net=2,
    )
    layout = build_power_grid(spec, list(layer_stack))
    ports = build_clock_net(
        ClockNetSpec(
            trunk_y=80.5e-6,
            trunk_x_start=3e-6,
            trunk_length=150e-6,
            num_branches=2,
            branch_length=50e-6,
        ),
        layout,
    )
    return layout, ports


@pytest.fixture(scope="session")
def signal_grid_structure():
    """Signal over coplanar ground returns (the Figure-3a structure)."""
    return build_signal_over_grid(
        length=300e-6, returns_per_side=2, pitch=8e-6
    )


@pytest.fixture(scope="session")
def signal_grid_extraction(signal_grid_structure):
    """Cached partial-L extraction of the Figure-3a structure."""
    layout, _ = signal_grid_structure
    result, indices = extract_for_layout(layout)
    return result
