"""SPICE deck import and export/import round trips."""

import io

import numpy as np
import pytest

from repro.circuit.ac import ac_impedance
from repro.circuit.netlist import GROUND, Circuit
from repro.circuit.transient import transient_analysis
from repro.circuit.waveforms import DC, PWL, Pulse, Ramp, SineWave
from repro.io.parser import ParsedDeck, SpiceParseError, parse_value, read_spice
from repro.io.spice import write_spice


def parse(text: str) -> ParsedDeck:
    return read_spice(io.StringIO(text))


class TestValues:
    def test_engineering_suffixes(self):
        assert parse_value("1k") == 1e3
        assert parse_value("2.5n") == pytest.approx(2.5e-9)
        assert parse_value("3meg") == 3e6
        assert parse_value("10p") == 10e-12
        assert parse_value("4f") == 4e-15
        assert parse_value("1.5u") == pytest.approx(1.5e-6)

    def test_exponent_form(self):
        assert parse_value("2e-9") == 2e-9
        assert parse_value("-3.5E3") == -3500.0

    def test_trailing_units_ignored(self):
        assert parse_value("100nH") == pytest.approx(100e-9)
        assert parse_value("5pF") == pytest.approx(5e-12)

    def test_garbage_rejected(self):
        with pytest.raises(SpiceParseError):
            parse_value("ohm5")


class TestElements:
    def test_basic_deck(self):
        deck = parse(
            "* test\n"
            "R1 a b 1k\n"
            "C1 b 0 1p\n"
            "L1 b c 2n\n"
            ".end\n"
        )
        assert deck.title == "test"
        assert len(deck.circuit.resistors) == 1
        assert deck.circuit.resistors[0].resistance == 1000.0
        assert deck.circuit.capacitors[0].capacitance == pytest.approx(1e-12)
        assert deck.circuit.inductors[0].inductance == pytest.approx(2e-9)

    def test_comments_and_blanks_skipped(self):
        deck = parse("* t\n\n* a comment\nR1 a 0 1\n.end\n")
        assert len(deck.circuit.resistors) == 1

    def test_continuation_lines(self):
        deck = parse("* t\nR1 a\n+ 0 5\n.end\n")
        assert deck.circuit.resistors[0].resistance == 5.0

    def test_coupling_reconstructed_as_mutual(self):
        deck = parse(
            "* t\n"
            "L1 a 0 1n\n"
            "L2 b 0 4n\n"
            "K1 L1 L2 0.5\n"
            ".end\n"
        )
        mut = deck.circuit.mutuals[0]
        assert mut.mutual == pytest.approx(1e-9)  # 0.5 * sqrt(1n*4n)

    def test_unknown_coupling_ref_rejected(self):
        with pytest.raises(SpiceParseError):
            parse("* t\nL1 a 0 1n\nK1 L1 L9 0.5\n.end\n")

    def test_dot_cards_recorded(self):
        deck = parse("* t\nR1 a 0 1\n.tran 1p 1n\n.end\n")
        assert deck.ignored_cards == [".tran 1p 1n"]

    def test_unsupported_element_rejected(self):
        with pytest.raises(SpiceParseError):
            parse("* t\nQ1 a b c model\n.end\n")


class TestSources:
    def test_dc(self):
        deck = parse("* t\nV1 a 0 DC 1.2\nR1 a 0 1\n.end\n")
        assert deck.circuit.vsources[0].waveform(0.0) == pytest.approx(1.2)

    def test_bare_value_is_dc(self):
        deck = parse("* t\nI1 a 0 1m\nR1 a 0 1\n.end\n")
        assert deck.circuit.isources[0].waveform(0.0) == pytest.approx(1e-3)

    def test_pulse(self):
        deck = parse(
            "* t\nV1 a 0 PULSE(0 1 1n 0.1n 0.1n 2n 10n)\nR1 a 0 1\n.end\n"
        )
        w = deck.circuit.vsources[0].waveform
        assert w(0.5e-9) == 0.0
        assert w(2e-9) == 1.0

    def test_pwl(self):
        deck = parse("* t\nI1 a 0 PWL(0 0 1n 1m)\nR1 a 0 1\n.end\n")
        w = deck.circuit.isources[0].waveform
        assert w(0.5e-9) == pytest.approx(0.5e-3)

    def test_sin(self):
        deck = parse("* t\nV1 a 0 SIN(0.5 0.5 1g 0)\nR1 a 0 1\n.end\n")
        w = deck.circuit.vsources[0].waveform
        assert w(0.25e-9) == pytest.approx(1.0)

    def test_bad_pwl_rejected(self):
        with pytest.raises(SpiceParseError):
            parse("* t\nV1 a 0 PWL(0 0 1n)\nR1 a 0 1\n.end\n")


class TestRoundTrip:
    def build_reference(self) -> Circuit:
        circuit = Circuit("roundtrip")
        circuit.add_vsource("vin", "in", GROUND, Ramp(0, 1, 0.1e-9, 0.2e-9))
        circuit.add_resistor("rd", "in", "a", 25.0)
        circuit.add_inductor("l1", "a", "b", 1e-9)
        circuit.add_inductor("l2", "ret", GROUND, 0.8e-9)
        circuit.add_mutual("m", "l1", "l2", 0.4e-9)
        circuit.add_resistor("rret", "b", "ret", 0.1)
        circuit.add_capacitor("cl", "b", GROUND, 0.2e-12)
        return circuit

    def test_transient_survives_round_trip(self):
        original = self.build_reference()
        buf = io.StringIO()
        write_spice(original, buf)
        buf.seek(0)
        restored = read_spice(buf).circuit

        res_a = transient_analysis(original, 2e-9, 2e-12, record=["b"])
        res_b = transient_analysis(restored, 2e-9, 2e-12, record=["b"])
        assert np.allclose(res_a.voltage("b"), res_b.voltage("b"), atol=1e-9)

    def test_inductor_set_round_trip_electrically_equivalent(self):
        matrix = np.array([[2e-9, 0.5e-9], [0.5e-9, 1.5e-9]])
        original = Circuit("sets")
        original.add_resistor("r1", "p", "a", 3.0)
        original.add_resistor("r2", "p", "b", 4.0)
        original.add_inductor_set("Lp", [("a", GROUND), ("b", GROUND)],
                                  matrix)
        buf = io.StringIO()
        write_spice(original, buf)
        buf.seek(0)
        restored = read_spice(buf).circuit
        freqs = [1e8, 1e9, 1e10]
        z_a = ac_impedance(original, freqs, ("p", GROUND))
        z_b = ac_impedance(restored, freqs, ("p", GROUND))
        assert np.allclose(z_a, z_b, rtol=1e-9)
