"""SPICE netlist export."""

import io
import math

import numpy as np
import pytest

from repro.circuit.netlist import GROUND, Circuit
from repro.circuit.waveforms import DC, PWL, Pulse, Ramp, SineWave
from repro.io.spice import write_spice


def export(circuit, **kwargs) -> str:
    buf = io.StringIO()
    write_spice(circuit, buf, **kwargs)
    return buf.getvalue()


class TestBasicElements:
    def test_rlc_lines(self):
        c = Circuit("t")
        c.add_resistor("r1", "a", "b", 50.0)
        c.add_capacitor("c1", "b", GROUND, 1e-12)
        c.add_inductor("l1", "b", "c", 2e-9)
        deck = export(c)
        assert "Rr1 a b 50" in deck
        assert "Cc1 b 0 1e-12" in deck
        assert "Ll1 b c 2e-09" in deck
        assert deck.rstrip().endswith(".end")

    def test_title_line_first(self):
        c = Circuit("mycircuit")
        c.add_resistor("r", "a", GROUND, 1.0)
        deck = export(c)
        assert deck.splitlines()[0] == "* mycircuit"

    def test_mutual_as_coupling_coefficient(self):
        c = Circuit("t")
        c.add_inductor("l1", "a", GROUND, 1e-9)
        c.add_inductor("l2", "b", GROUND, 4e-9)
        c.add_mutual("m", "l1", "l2", 1e-9)
        deck = export(c)
        # k = M / sqrt(L1 L2) = 1e-9 / 2e-9 = 0.5
        assert "Km Ll1 Ll2 0.5" in deck

    def test_inductor_set_expansion(self):
        c = Circuit("t")
        matrix = np.array([[2e-9, 0.5e-9], [0.5e-9, 2e-9]])
        c.add_inductor_set("Lp", [("a", GROUND), ("b", GROUND)], matrix)
        deck = export(c)
        assert "LLp_0 a 0 2e-09" in deck
        assert "LLp_1 b 0 2e-09" in deck
        assert "KLp_0_1 LLp_0 LLp_1 0.25" in deck

    def test_zero_mutual_entries_skipped(self):
        c = Circuit("t")
        matrix = np.diag([1e-9, 1e-9])
        c.add_inductor_set("Lp", [("a", GROUND), ("b", GROUND)], matrix)
        deck = export(c)
        assert "KLp" not in deck

    def test_node_sanitization(self):
        c = Circuit("t")
        c.add_resistor("seg:R", "n0:m", "x.y", 1.0)
        deck = export(c)
        assert "Rseg_R n0_m x_y 1" in deck


class TestSources:
    def test_dc_source(self):
        c = Circuit("t")
        c.add_vsource("vdd", "a", GROUND, DC(1.2))
        c.add_resistor("r", "a", GROUND, 1.0)
        assert "Vvdd a 0 DC 1.2" in export(c)

    def test_ramp_as_pwl(self):
        c = Circuit("t")
        c.add_vsource("vin", "a", GROUND, Ramp(0.0, 1.0, 1e-9, 2e-9))
        c.add_resistor("r", "a", GROUND, 1.0)
        deck = export(c)
        assert "PWL(0 0 1e-09 0 3e-09 1)" in deck

    def test_pulse(self):
        c = Circuit("t")
        c.add_isource("i", "a", GROUND,
                      Pulse(0, 1e-3, 1e-9, 1e-10, 1e-10, 1e-9, 4e-9))
        c.add_resistor("r", "a", GROUND, 1.0)
        deck = export(c)
        assert "PULSE(0 0.001 1e-09 1e-10 1e-10 1e-09 4e-09)" in deck

    def test_pwl_points(self):
        c = Circuit("t")
        c.add_isource("i", "a", GROUND,
                      PWL(points=((0.0, 0.0), (1e-9, 1e-3))))
        c.add_resistor("r", "a", GROUND, 1.0)
        assert "PWL(0 0 1e-09 0.001)" in export(c)

    def test_sine(self):
        c = Circuit("t")
        c.add_vsource("v", "a", GROUND, SineWave(0.5, 0.5, 1e9))
        c.add_resistor("r", "a", GROUND, 1.0)
        assert "SIN(0.5 0.5 1e+09 0)" in export(c)

    def test_unknown_waveform_sampled(self):
        c = Circuit("t")
        c.add_vsource("v", "a", GROUND, lambda t: t * 1e9)
        c.add_resistor("r", "a", GROUND, 1.0)
        deck = export(c, t_stop=1e-9)
        assert "PWL(" in deck

    def test_unknown_waveform_without_tstop_rejected(self):
        c = Circuit("t")
        c.add_vsource("v", "a", GROUND, lambda t: 0.0)
        c.add_resistor("r", "a", GROUND, 1.0)
        with pytest.raises(ValueError):
            export(c)


class TestUnsupported:
    def test_k_sets_rejected(self):
        c = Circuit("t")
        c.add_k_set("ks", [("a", GROUND)], np.array([[1e9]]))
        with pytest.raises(ValueError):
            export(c)

    def test_macromodels_rejected(self):
        c = Circuit("t")
        c.add_macromodel("m", [("a", GROUND)], np.eye(1), np.eye(1),
                         np.ones((1, 1)))
        with pytest.raises(ValueError):
            export(c)

    def test_devices_rejected(self):
        from repro.circuit.devices import CMOSInverter

        c = Circuit("t")
        c.add_vsource("vdd", "vdd", GROUND, 1.2)
        c.add_device(CMOSInverter("u", "vdd", "o", "vdd", GROUND))
        with pytest.raises(ValueError):
            export(c)


class TestFullModelExport:
    def test_peec_model_exports(self, small_grid_layout):
        from repro.peec.model import PEECOptions, build_peec_model

        model = build_peec_model(
            small_grid_layout, PEECOptions(max_segment_length=60e-6)
        )
        deck = export(model.circuit, analysis=".tran 1p 1n")
        # Every element class present, analysis card included.
        assert deck.count("\nR") >= len(model.circuit.resistors)
        assert ".tran 1p 1n" in deck
        assert deck.rstrip().endswith(".end")

    def test_coupling_coefficients_below_one(self, small_grid_layout):
        from repro.peec.model import PEECOptions, build_peec_model

        model = build_peec_model(
            small_grid_layout, PEECOptions(max_segment_length=60e-6)
        )
        deck = export(model.circuit)
        for line in deck.splitlines():
            if line.startswith("K"):
                k = abs(float(line.split()[-1]))
                assert k < 1.0
