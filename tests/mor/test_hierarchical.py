"""Hierarchical interconnect models (paper ref [16])."""

import numpy as np
import pytest

from repro.circuit.netlist import GROUND, Circuit
from repro.circuit.transient import transient_analysis
from repro.circuit.waveforms import Ramp
from repro.mor.hierarchical import hierarchical_reduction


def two_block_line(sections_per_block=10, r=5.0, c=15e-15):
    """Two RC-ladder blocks joined by a global link resistor."""
    circuit = Circuit("line")
    prev = "in"
    for k in range(sections_per_block):
        nxt = f"a{k}"
        circuit.add_resistor(f"ra{k}", prev, nxt, r)
        circuit.add_capacitor(f"ca{k}", nxt, GROUND, c)
        prev = nxt
    circuit.add_resistor("rlink", prev, "mid", r)
    prev = "mid"
    for k in range(sections_per_block):
        nxt = f"b{k}"
        circuit.add_resistor(f"rb{k}", prev, nxt, r)
        circuit.add_capacitor(f"cb{k}", nxt, GROUND, c)
        prev = nxt
    circuit.add_resistor("rterm", prev, GROUND, 100.0)
    blocks = [
        {f"a{k}" for k in range(sections_per_block)},
        {f"b{k}" for k in range(sections_per_block - 1)},
    ]
    return circuit, blocks, prev


class TestPartitioning:
    def test_overlapping_blocks_rejected(self):
        circuit, _, _ = two_block_line(3)
        with pytest.raises(ValueError):
            hierarchical_reduction(circuit, [{"a0"}, {"a0"}])

    def test_ground_in_block_rejected(self):
        circuit, _, _ = two_block_line(3)
        with pytest.raises(ValueError):
            hierarchical_reduction(circuit, [{GROUND}])

    def test_devices_rejected(self):
        from repro.circuit.devices import CMOSInverter

        circuit, blocks, _ = two_block_line(3)
        circuit.add_vsource("vdd", "vdd", GROUND, 1.2)
        circuit.add_device(CMOSInverter("u", "in", "a0", "vdd", GROUND))
        with pytest.raises(ValueError):
            hierarchical_reduction(circuit, blocks)

    def test_cross_block_mutual_rejected(self):
        circuit = Circuit("t")
        circuit.add_inductor("l1", "a", GROUND, 1e-9)
        circuit.add_inductor("l2", "b", GROUND, 1e-9)
        circuit.add_mutual("m", "l1", "l2", 0.2e-9)
        circuit.add_resistor("r1", "in", "a", 1.0)
        circuit.add_resistor("r2", "in", "b", 1.0)
        with pytest.raises(ValueError):
            hierarchical_reduction(circuit, [{"a"}, {"b"}])


class TestAccuracy:
    def test_hierarchical_matches_flat(self):
        flat, blocks, out_node = two_block_line(10)
        flat.add_vsource("vin", "src", GROUND, Ramp(0, 1, 10e-12, 40e-12))
        flat.add_resistor("rdrv", "src", "in", 30.0)

        hier_src, _, _ = two_block_line(10)
        hier_src.add_vsource("vin", "src", GROUND,
                             Ramp(0, 1, 10e-12, 40e-12))
        hier_src.add_resistor("rdrv", "src", "in", 30.0)
        model = hierarchical_reduction(
            hier_src, blocks, order_per_block=10
        )

        res_flat = transient_analysis(flat, 2e-9, 4e-12, record=[out_node])
        res_hier = transient_analysis(model.circuit, 2e-9, 4e-12,
                                      record=[out_node])
        err = np.max(np.abs(res_flat.voltage(out_node)
                            - res_hier.voltage(out_node)))
        assert err < 0.01

    def test_reduction_shrinks_unknowns(self):
        circuit, blocks, _ = two_block_line(15)
        model = hierarchical_reduction(circuit, blocks, order_per_block=8)
        from repro.circuit.mna import MNASystem

        reduced_size = MNASystem(model.circuit).size
        assert reduced_size < model.full_unknowns
        assert set(model.block_orders) == {0, 1}

    def test_keep_nodes_stay_observable(self):
        observed = "a4"

        flat, blocks, _ = two_block_line(8)
        flat.add_vsource("vin", "src", GROUND, Ramp(0, 1, 0, 40e-12))
        flat.add_resistor("rdrv", "src", "in", 30.0)
        res_flat = transient_analysis(flat, 1e-9, 4e-12, record=[observed])

        circuit, blocks, _ = two_block_line(8)
        circuit.add_vsource("vin", "src", GROUND, Ramp(0, 1, 0, 40e-12))
        circuit.add_resistor("rdrv", "src", "in", 30.0)
        model = hierarchical_reduction(
            circuit, blocks, order_per_block=10, keep_nodes={observed}
        )
        res = transient_analysis(model.circuit, 1e-9, 4e-12,
                                 record=[observed])
        err = np.max(np.abs(res.voltage(observed)
                            - res_flat.voltage(observed)))
        assert err < 0.01
