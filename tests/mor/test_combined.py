"""Combined block-diagonal + PRIMA flow with macromodel embedding."""

import numpy as np
import pytest

from repro.circuit.netlist import GROUND, Circuit
from repro.circuit.transient import transient_analysis
from repro.circuit.waveforms import Ramp
from repro.geometry import build_signal_over_grid
from repro.mor.combined import combined_reduction
from repro.mor.ports import NodePort
from repro.peec.model import PEECOptions, build_peec_model
from repro.sparsify import BlockDiagonalSparsifier


@pytest.fixture(scope="module")
def peec_pair():
    """(full dense model, block-diagonal model) over the same structure."""
    layout, ports = build_signal_over_grid(
        length=300e-6, returns_per_side=2, pitch=8e-6
    )

    def build(sparsifier):
        model = build_peec_model(
            layout,
            PEECOptions(max_segment_length=100e-6, sparsifier=sparsifier),
        )
        rcv = model.node_at(ports["receiver"])
        model.circuit.add_capacitor("Cload", rcv, GROUND, 20e-15)
        gnd = model.node_at(ports["gnd_driver"])
        model.circuit.add_resistor("Rgnd", gnd, GROUND, 0.05)
        gnd_r = model.node_at(ports["gnd_receiver"])
        model.circuit.add_resistor("Rgnd2", gnd_r, GROUND, 0.05)
        return model, model.node_at(ports["driver"]), rcv

    return build(None), build(BlockDiagonalSparsifier(num_sections=2))


class TestCombinedFlow:
    def test_rejects_circuits_with_sources(self):
        c = Circuit("t")
        c.add_vsource("v", "a", GROUND, 1.0)
        c.add_resistor("r", "a", GROUND, 1.0)
        with pytest.raises(ValueError):
            combined_reduction(c, ["a"], [], order=2)

    def test_requires_active_ports(self):
        c = Circuit("t")
        c.add_resistor("r", "a", GROUND, 1.0)
        with pytest.raises(ValueError):
            combined_reduction(c, [], [], order=2)

    def test_compression_reported(self, peec_pair):
        (_, _, _), (model, drv, rcv) = peec_pair
        result = combined_reduction(model.circuit, [drv], [rcv], order=12)
        assert result.model.order <= 12
        assert result.compression > 3.0
        assert result.reduction_seconds >= 0.0

    def test_rom_transient_matches_full_model(self, peec_pair):
        (full_model, full_drv, full_rcv), (bd_model, drv, rcv) = peec_pair

        # Reference: full dense PEEC with a Thevenin driver.
        ref = full_model.circuit
        ref.add_vsource("Vin", "vin", GROUND, Ramp(0.0, 1.0, 20e-12, 40e-12))
        ref.add_resistor("Rdrv", "vin", full_drv, 50.0)
        res_ref = transient_analysis(ref, 0.8e-9, 2e-12, record=[full_rcv])

        # ROM of the block-diagonal model, same driver in a host circuit.
        comb = combined_reduction(bd_model.circuit, [drv], [rcv], order=20)
        host = Circuit("host")
        host.add_vsource("Vin", "vin", GROUND, Ramp(0.0, 1.0, 20e-12, 40e-12))
        host.add_resistor("Rdrv", "vin", "port", 50.0)
        mm = comb.model.to_macromodel("rom", [NodePort("port")])
        host.add_macromodel("rom", mm.ports, mm.g_red, mm.c_red, mm.b_red)
        res_rom = transient_analysis(host, 0.8e-9, 2e-12)
        wave_rom = comb.model.observe(res_rom, "rom", rcv)

        err = np.max(np.abs(wave_rom - res_ref.voltage(full_rcv)))
        assert err < 0.05  # block-diag + order-20 ROM within 50 mV

    def test_macromodel_port_count_checked(self, peec_pair):
        _, (model, drv, rcv) = peec_pair
        comb = combined_reduction(model.circuit, [drv], [rcv], order=8)
        with pytest.raises(ValueError):
            comb.model.to_macromodel("rom", [NodePort("a"), NodePort("b")])

    def test_observe_unknown_output_rejected(self, peec_pair):
        _, (model, drv, rcv) = peec_pair
        comb = combined_reduction(model.circuit, [drv], [rcv], order=8)
        host = Circuit("host")
        host.add_isource("inj", GROUND, "port", 0.0)
        mm = comb.model.to_macromodel("rom", [NodePort("port")])
        host.add_macromodel("rom", mm.ports, mm.g_red, mm.c_red, mm.b_red)
        res = transient_analysis(host, 0.1e-9, 2e-12)
        with pytest.raises(KeyError):
            comb.model.observe(res, "rom", "not_an_output")
