"""PRIMA reduction: moment matching, passivity, accuracy vs order."""

import numpy as np
import pytest

from repro.circuit.ac import ac_impedance
from repro.circuit.mna import MNASystem
from repro.circuit.netlist import GROUND, Circuit
from repro.mor.ports import NodePort, SourcePort, input_matrix, output_matrix
from repro.mor.prima import prima_reduce


def rc_ladder(sections=20, r=10.0, c=20e-15, r_term=100.0):
    """A terminated RC ladder: the canonical MOR benchmark.

    The termination gives the port a DC path, so transfer functions have
    finite DC values (an open ladder is a pure integrator at DC).
    """
    circuit = Circuit("ladder")
    prev = "p"
    for k in range(sections):
        nxt = f"n{k}"
        circuit.add_resistor(f"r{k}", prev, nxt, r)
        circuit.add_capacitor(f"c{k}", nxt, GROUND, c)
        prev = nxt
    circuit.add_resistor("r_term", prev, GROUND, r_term)
    return circuit


def rlc_line(sections=15, r=2.0, l=0.2e-9, c=10e-15):
    circuit = Circuit("line")
    prev = "p"
    for k in range(sections):
        nxt = f"n{k}"
        circuit.add_series_rl(f"s{k}", prev, nxt, r, l)
        circuit.add_capacitor(f"c{k}", nxt, GROUND, c)
        prev = nxt
    return circuit


class TestPortMatrices:
    def test_node_port_column(self):
        circuit = rc_ladder(3)
        system = MNASystem(circuit)
        b = input_matrix(system, [NodePort("p")])
        assert b[system.node_index("p"), 0] == 1.0
        assert np.count_nonzero(b) == 1

    def test_source_port_isource(self):
        circuit = rc_ladder(3)
        circuit.add_isource("inj", GROUND, "p", 0.0)
        system = MNASystem(circuit)
        b = input_matrix(system, [SourcePort("inj")])
        assert b[system.node_index("p"), 0] == 1.0

    def test_source_port_vsource(self):
        circuit = rc_ladder(3)
        circuit.add_vsource("vs", "p", GROUND, 0.0)
        system = MNASystem(circuit)
        b = input_matrix(system, [SourcePort("vs")])
        assert b[system.branch_index("vs"), 0] == -1.0

    def test_unknown_source_rejected(self):
        system = MNASystem(rc_ladder(3))
        with pytest.raises(KeyError):
            input_matrix(system, [SourcePort("nope")])

    def test_output_matrix_selects_nodes(self):
        circuit = rc_ladder(3)
        system = MNASystem(circuit)
        l_matrix = output_matrix(system, ["n1", "n2"])
        assert l_matrix[system.node_index("n1"), 0] == 1.0
        assert l_matrix[system.node_index("n2"), 1] == 1.0


class TestReduction:
    def test_impedance_matches_full_model(self):
        circuit = rc_ladder(25)
        rom = prima_reduce(circuit, [NodePort("p")], order=10, s0_hz=2e9)
        freqs = np.logspace(8, 10, 7)
        h = rom.transfer(freqs)[:, 0, 0]
        z_full = ac_impedance(rc_ladder(25), freqs, ("p", GROUND), gmin=1e-12)
        assert np.max(np.abs(h - z_full) / np.abs(z_full)) < 1e-3

    def test_rlc_impedance_matches(self):
        circuit = rlc_line(12)
        rom = prima_reduce(circuit, [NodePort("p")], order=24, s0_hz=3e9)
        freqs = np.logspace(8.5, 10, 6)
        h = rom.transfer(freqs)[:, 0, 0]
        z_full = ac_impedance(rlc_line(12), freqs, ("p", GROUND), gmin=1e-12)
        assert np.max(np.abs(h - z_full) / np.abs(z_full)) < 1e-2

    def test_error_decreases_with_order(self):
        freqs = np.logspace(8, 10.3, 9)
        z_full = ac_impedance(rc_ladder(30), freqs, ("p", GROUND), gmin=1e-12)
        errors = []
        for order in (2, 4, 8):
            rom = prima_reduce(rc_ladder(30), [NodePort("p")], order=order,
                               s0_hz=2e9)
            h = rom.transfer(freqs)[:, 0, 0]
            errors.append(float(np.max(np.abs(h - z_full) / np.abs(z_full))))
        assert errors[2] < errors[0]

    def test_reduced_model_is_passive_structured(self):
        rom = prima_reduce(rlc_line(10), [NodePort("p")], order=12, s0_hz=2e9)
        # Congruence must preserve G+G^T >= 0 and C >= 0.
        sym_g = np.linalg.eigvalsh(rom.g_red + rom.g_red.T)
        sym_c = np.linalg.eigvalsh((rom.c_red + rom.c_red.T) / 2)
        assert sym_g.min() > -1e-9 * abs(sym_g).max()
        assert sym_c.min() > -1e-9 * abs(sym_c).max()

    def test_projection_orthonormal(self):
        rom = prima_reduce(rc_ladder(20), [NodePort("p")], order=8, s0_hz=2e9)
        v = rom.projection
        assert np.allclose(v.T @ v, np.eye(v.shape[1]), atol=1e-9)

    def test_outputs_observed_through_l(self):
        circuit = rc_ladder(20)
        rom = prima_reduce(circuit, [NodePort("p")], order=10,
                           outputs=["n19"], s0_hz=1e9)
        assert rom.output_names == ["n19"]
        # At DC all port current flows through the ladder into the
        # termination, so the far-end voltage is i * r_term = 100 ohm * i.
        h0 = rom.transfer([1e3])[0, 0, 0]
        assert h0.real == pytest.approx(100.0, rel=0.01)

    def test_simulate_reduced_transient(self):
        from repro.circuit.waveforms import Ramp

        rom = prima_reduce(rc_ladder(20), [NodePort("p")], order=10,
                           outputs=["n19"], s0_hz=1e9)
        times, out = rom.simulate(
            {"port0": Ramp(0.0, 1e-3, 0.0, 0.1e-9)}, 40e-9, 20e-12
        )
        wave = out["n19"]
        # 1 mA through the ladder into the 100-ohm termination -> 0.1 V.
        assert wave[-1] == pytest.approx(0.1, rel=0.02)

    def test_simulate_rejects_unknown_input(self):
        rom = prima_reduce(rc_ladder(5), [NodePort("p")], order=4)
        with pytest.raises(KeyError):
            rom.simulate({"bogus": lambda t: 0.0}, 1e-9, 1e-11)

    def test_rejects_nonlinear_circuit(self):
        from repro.circuit.devices import CMOSInverter

        circuit = rc_ladder(3)
        circuit.add_device(CMOSInverter("u", "p", "n0", "n1", GROUND))
        with pytest.raises(ValueError):
            prima_reduce(circuit, [NodePort("p")], order=4)

    def test_order_validation(self):
        with pytest.raises(ValueError):
            prima_reduce(rc_ladder(3), [NodePort("p")], order=0)

    def test_active_port_block_smaller_than_all_ports(self):
        # One active port -> Krylov block width 1; 3 ports -> width 3.
        rom1 = prima_reduce(rc_ladder(20), [NodePort("p")], order=6)
        rom3 = prima_reduce(
            rc_ladder(20),
            [NodePort("p"), NodePort("n10"), NodePort("n19")],
            order=6,
        )
        assert rom1.b_red.shape[1] == 1
        assert rom3.b_red.shape[1] == 3
