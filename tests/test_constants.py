"""Unit helpers and physical constants."""

import math

import pytest

from repro import constants


def test_mu0_value():
    assert constants.MU0 == pytest.approx(1.25663706e-6, rel=1e-6)


def test_unit_round_trips():
    assert constants.to_um(constants.um(3.5)) == pytest.approx(3.5)
    assert constants.to_nh(constants.nh(0.7)) == pytest.approx(0.7)
    assert constants.to_ff(constants.ff(12.0)) == pytest.approx(12.0)
    assert constants.to_ps(constants.ps(86.0)) == pytest.approx(86.0)


def test_unit_scales():
    assert constants.um(1.0) == 1e-6
    assert constants.nh(1.0) == 1e-9
    assert constants.ff(1.0) == 1e-15
    assert constants.ps(1.0) == 1e-12
    assert constants.GHZ == 1e9


def test_skin_depth_copper_1ghz():
    # Classic value: ~2.1 um for copper at 1 GHz.
    delta = constants.skin_depth(1e9, constants.RHO_COPPER)
    assert delta == pytest.approx(2.09e-6, rel=0.02)


def test_skin_depth_scales_inverse_sqrt_frequency():
    d1 = constants.skin_depth(1e9)
    d4 = constants.skin_depth(4e9)
    assert d1 / d4 == pytest.approx(2.0, rel=1e-9)


def test_skin_depth_rejects_nonpositive_frequency():
    with pytest.raises(ValueError):
        constants.skin_depth(0.0)
    with pytest.raises(ValueError):
        constants.skin_depth(-1e9)
