"""Failure injection: diagnostics stay informative when inputs are broken.

A production tool's error paths are part of its contract; these tests
lock in the messages and exception types users will hit.
"""

import numpy as np
import pytest

from repro.circuit.dc import ConvergenceError, dc_operating_point
from repro.circuit.linalg import Factorization, SingularCircuitError, add_gmin
from repro.circuit.netlist import GROUND, Circuit
from repro.circuit.transient import transient_analysis


class TestSingularCircuits:
    def test_parallel_ideal_inductors_are_singular_at_dc(self):
        # Two ideal inductors directly in parallel: identical branch rows.
        c = Circuit("t")
        c.add_vsource("v", "a", GROUND, 1.0)
        c.add_inductor("l1", "a", GROUND, 1e-9)
        c.add_inductor("l2", "a", GROUND, 1e-9)
        with pytest.raises(SingularCircuitError):
            dc_operating_point(c)

    def test_voltage_source_loop_is_singular(self):
        c = Circuit("t")
        c.add_vsource("v1", "a", GROUND, 1.0)
        c.add_vsource("v2", "a", GROUND, 2.0)  # conflicting loop
        c.add_resistor("r", "a", GROUND, 1.0)
        with pytest.raises(SingularCircuitError):
            dc_operating_point(c)

    def test_factorization_error_message_is_actionable(self):
        singular = np.zeros((2, 2))
        with pytest.raises(SingularCircuitError) as err:
            Factorization(singular).solve(np.ones(2))
        assert "factorization failed" in str(err.value) or \
            "singular" in str(err.value).lower()

    def test_nonfinite_solution_detected(self):
        # Inject a NaN into an otherwise healthy solve: with escalation
        # off there is no rescue rung, so the non-finite check MUST raise.
        from repro.circuit.linalg import ResilientFactorization
        from repro.resilience import FaultSpec, ResiliencePolicy, inject_faults

        healthy = np.array([[2.0, 0.0], [0.0, 1.0]])
        with inject_faults(FaultSpec("*.lu", "nan")):
            with pytest.raises(SingularCircuitError) as err:
                ResilientFactorization(
                    healthy, site="test",
                    policy=ResiliencePolicy(escalation="off"),
                ).solve(np.array([1.0, 1.0]))
        assert "non-finite" in str(err.value)


class TestGmin:
    def test_add_gmin_dense_and_sparse_agree(self):
        import scipy.sparse as sp

        g = np.array([[1.0, -1.0], [-1.0, 1.0]])
        dense = add_gmin(g, 2, 1e-9)
        sparse = add_gmin(sp.csr_matrix(g), 2, 1e-9)
        assert np.allclose(dense, sparse.toarray())

    def test_zero_gmin_is_identity_op(self):
        g = np.eye(3)
        assert add_gmin(g, 3, 0.0) is g

    def test_gmin_applies_to_node_rows_only(self):
        g = np.zeros((4, 4))
        out = add_gmin(g, 2, 1e-6)
        assert out[0, 0] == 1e-6
        assert out[1, 1] == 1e-6
        assert out[2, 2] == 0.0


class TestBadTopologies:
    def test_peec_rejects_via_off_metal(self):
        from repro.geometry.layout import Layout, NetKind
        from repro.geometry.segment import Direction, default_layer_stack
        from repro.peec.model import build_peec_model

        layout = Layout(default_layer_stack(6))
        layout.add_net("a", NetKind.SIGNAL)
        layout.add_wire("a", "M5", Direction.X, (0.0, 0.0), 50e-6, 1e-6)
        layout.add_wire("a", "M6", Direction.Y, (0.0, 0.0), 50e-6, 1e-6)
        layout.add_via("a", 400e-6, 400e-6, "M5", "M6", 1e-6)  # floating
        with pytest.raises(ValueError) as err:
            build_peec_model(layout)
        assert "via" in str(err.value)

    def test_loop_port_far_from_net_rejected(self, signal_grid_structure):
        from repro.geometry.clocktree import TapPoint
        from repro.loop.extractor import LoopPort, extract_loop_impedance

        layout, ports = signal_grid_structure
        bad_port = LoopPort(
            signal=TapPoint("sig", 9e-3, 9e-3, "M6", "far"),
            reference=ports["gnd_driver"],
            short_signal=ports["receiver"],
            short_reference=ports["gnd_receiver"],
        )
        with pytest.raises(ValueError):
            extract_loop_impedance(layout, bad_port, [1e9])

    def test_shell_gives_up_gracefully_on_hopeless_layouts(self):
        # A single isolated pair cannot be fixed by any shell radius if we
        # forbid growth.
        from repro.extraction.partial_matrix import extract_partial_inductance
        from repro.geometry.segment import Direction, Segment
        from repro.sparsify.shell import ShellSparsifier

        segs = [
            Segment(net="s", layer="M6", direction=Direction.X,
                    origin=(0.0, k * 2e-6, 7e-6), length=5000e-6,
                    width=1e-6, thickness=0.5e-6, name=f"l{k}")
            for k in range(6)
        ]
        extraction = extract_partial_inductance(segs)
        sparsifier = ShellSparsifier(radius=1.5e-6, max_grow=0)
        # Either it recovers PD at this radius or it raises the documented
        # error -- never returns an indefinite matrix silently.
        try:
            blocks = sparsifier.apply(extraction)
        except RuntimeError as err:
            assert "indefinite" in str(err)
        else:
            from repro.sparsify.stability import is_positive_definite

            assert is_positive_definite(blocks.to_dense(extraction.size))


class TestTransientDiagnostics:
    def test_transient_on_singular_circuit_raises(self):
        c = Circuit("t")
        c.add_vsource("v1", "a", GROUND, 1.0)
        c.add_vsource("v2", "a", GROUND, 2.0)
        c.add_resistor("r", "a", GROUND, 1.0)
        with pytest.raises(SingularCircuitError):
            transient_analysis(c, 1e-9, 1e-12, x0="zero")

    def test_dc_convergence_error_names_the_residual(self):
        # An absurdly strong positive-feedback-like device via a Python
        # class that never balances.
        class Diverging:
            name = "d"
            nodes = ("a",)

            def evaluate(self, v):
                i = np.array([np.exp(40.0 * (float(v[0]) + 10.0))])
                jac = np.array([[40.0 * i[0]]])
                return i, jac

        c = Circuit("t")
        c.add_isource("bias", GROUND, "a", 1e3)  # demands huge voltage
        c.add_resistor("r", "a", GROUND, 1e9)
        c.add_device(Diverging())
        with pytest.raises((ConvergenceError, SingularCircuitError)):
            dc_operating_point(c, max_iter=8)
