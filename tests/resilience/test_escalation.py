"""The solver escalation chain: LU -> equilibrated -> gmin -> lstsq."""

import numpy as np
import pytest

from repro.circuit.linalg import (
    Factorization,
    ResilientFactorization,
    SingularCircuitError,
    add_gmin,
    resilient_solve,
)
from repro.resilience import (
    FaultSpec,
    ResiliencePolicy,
    RunReport,
    activate,
    inject_faults,
)

SAFE = ResiliencePolicy(escalation="safe")
FULL = ResiliencePolicy(escalation="full")


def _well_posed(n=6, seed=7):
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n, n)) + n * np.eye(n)
    b = rng.normal(size=n)
    return a, b


class TestCleanPath:
    def test_first_rung_wins_outright(self):
        a, b = _well_posed()
        with inject_faults():  # shut out any ambient chaos injector
            rf = ResilientFactorization(a, site="t", policy=SAFE)
            x = rf.solve(b)
        assert np.allclose(a @ x, b)
        assert rf.report.winner == "lu"
        assert not rf.report.escalated
        first = rf.report.attempts[0]
        assert first.ok and first.condition_estimate is not None

    def test_resilient_solve_one_shot(self):
        a, b = _well_posed()
        with inject_faults():
            x = resilient_solve(a, b, site="t", policy=SAFE)
        assert np.allclose(a @ x, b)


class TestInjectedRecovery:
    def test_singular_first_rung_recovers_on_later_rung(self):
        # Acceptance: a singular perturbation sabotages the first rung;
        # the solve recovers on a later rung and the SolveReport records
        # both the failure and the winner.
        a, b = _well_posed()
        with inject_faults(FaultSpec("*.lu", "singular")):
            rf = ResilientFactorization(a, site="t", policy=SAFE)
            x = rf.solve(b)
        assert np.allclose(a @ x, b, atol=1e-8)
        report = rf.report
        assert report.winner == "equilibrated"
        assert report.escalated
        assert [att.rung for att in report.attempts] == ["lu", "equilibrated"]
        assert not report.attempts[0].ok
        assert "singular" in report.attempts[0].error.lower() or \
            report.attempts[0].error
        assert report.attempts[1].ok
        assert report.attempts[1].condition_estimate is not None

    def test_nan_poisoning_escalates(self):
        a, b = _well_posed()
        with inject_faults(FaultSpec("*.lu", "nan")):
            rf = ResilientFactorization(a, site="t", policy=SAFE)
            x = rf.solve(b)
        assert np.all(np.isfinite(x))
        assert np.allclose(a @ x, b, atol=1e-8)
        assert rf.report.winner == "equilibrated"
        assert "non-finite" in rf.report.attempts[0].error

    def test_injected_raise_escalates(self):
        a, b = _well_posed()
        with inject_faults(FaultSpec("t.lu", "raise")):
            rf = ResilientFactorization(a, site="t", policy=SAFE)
            x = rf.solve(b)
        assert np.allclose(a @ x, b)
        assert rf.report.winner == "equilibrated"

    def test_bad_rung_not_retried_on_later_solves(self):
        a, b = _well_posed()
        with inject_faults(FaultSpec("t.lu", "singular")):
            rf = ResilientFactorization(a, site="t", policy=SAFE)
            rf.solve(b)
            rf.solve(b + 1.0)
            rf.solve(b - 1.0)
        # One failure recorded, one success recorded -- not one per call.
        assert len(rf.report.attempts) == 2


class TestRescueRungs:
    def test_gmin_rung_solves_consistent_singular_system(self):
        # Exactly singular but consistent: plain and equilibrated LU both
        # fail, the gmin rung's shifted solve + refinement is accepted.
        a = np.array([[1.0, 1.0], [1.0, 1.0]])
        b = np.array([2.0, 2.0])
        with inject_faults():
            rf = ResilientFactorization(a, site="t", policy=FULL)
            x = rf.solve(b)
        assert np.allclose(a @ x, b, atol=1e-7)
        assert rf.report.winner in ("gmin", "lstsq")
        assert rf.report.escalated
        winner = [att for att in rf.report.attempts if att.ok][0]
        assert winner.residual is not None and winner.residual <= 1e-6

    def test_lstsq_is_last_resort(self):
        a = np.array([[1.0, 1.0], [1.0, 1.0]])
        b = np.array([2.0, 2.0])
        with inject_faults(FaultSpec("t.gmin", "raise")):
            rf = ResilientFactorization(a, site="t", policy=FULL)
            x = rf.solve(b)
        assert np.allclose(a @ x, b, atol=1e-6)
        assert rf.report.winner == "lstsq"

    def test_inconsistent_singular_system_still_raises(self):
        # No rescue rung may fabricate an answer to an inconsistent system.
        a = np.array([[1.0, 1.0], [1.0, 1.0]])
        b = np.array([1.0, 2.0])
        with inject_faults():
            with pytest.raises(SingularCircuitError) as err:
                ResilientFactorization(a, site="t", policy=FULL).solve(b)
        assert "escalation rung" in str(err.value)

    def test_off_policy_fails_fast(self):
        a = np.array([[1.0, 1.0], [1.0, 1.0]])
        b = np.array([2.0, 2.0])
        with inject_faults():
            with pytest.raises(SingularCircuitError):
                ResilientFactorization(
                    a, site="t", policy=ResiliencePolicy(escalation="off")
                ).solve(b)

    def test_gmin_rung_matches_add_gmin_on_floating_node(self):
        # The gmin escalation rung is the implicit version of the explicit
        # add_gmin() convergence aid: on a floating-node (zero row/column)
        # but consistent system the two agree on the connected unknowns.
        g = np.array([
            [2.0, -1.0, 0.0],
            [-1.0, 2.0, 0.0],
            [0.0, 0.0, 0.0],   # floating node
        ])
        b = np.array([1.0, 0.0, 0.0])
        explicit = Factorization(add_gmin(g, 3, 1e-9)).solve(b)
        with inject_faults():
            rf = ResilientFactorization(g, site="t", policy=FULL)
            x = rf.solve(b)
        assert rf.report.winner in ("gmin", "lstsq")
        assert np.allclose(x[:2], explicit[:2], atol=1e-6)


class TestReportWiring:
    def test_escalated_solve_attaches_to_active_run_report(self):
        a, b = _well_posed()
        run = RunReport()
        with activate(run):
            with inject_faults(FaultSpec("*.lu", "singular")):
                ResilientFactorization(a, site="t", policy=SAFE).solve(b)
        assert len(run.solve_reports) == 1
        assert run.solve_reports[0].winner == "equilibrated"
        assert not run.clean

    def test_clean_solve_stays_off_run_report(self):
        a, b = _well_posed()
        run = RunReport()
        with activate(run):
            with inject_faults():
                ResilientFactorization(a, site="t", policy=SAFE).solve(b)
        assert run.clean

    def test_exhausted_chain_message_carries_the_trace(self):
        a = np.zeros((2, 2))
        with inject_faults():
            with pytest.raises(SingularCircuitError) as err:
                ResilientFactorization(a, site="t", policy=SAFE).solve(
                    np.ones(2)
                )
        msg = str(err.value)
        assert "lu" in msg and "equilibrated" in msg

    def test_condition_estimate_property(self):
        import scipy.sparse as sp

        a = np.diag([1.0, 1e6])
        assert Factorization(a).condition_estimate == pytest.approx(1e6)
        cond_sp = Factorization(
            sp.csc_matrix(np.diag([1.0, 1e3]))
        ).condition_estimate
        assert cond_sp == pytest.approx(1e3)
