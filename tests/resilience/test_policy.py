"""ResiliencePolicy knobs, rung selection, and env grammar."""

import pytest

from repro.resilience import DEFAULT_POLICY, ResiliencePolicy, default_policy


class TestRungSelection:
    def test_off_is_single_rung(self):
        assert ResiliencePolicy(escalation="off").rungs == ("lu",)

    def test_safe_is_answer_preserving_only(self):
        assert ResiliencePolicy(escalation="safe").rungs == (
            "lu", "equilibrated",
        )

    def test_full_enables_rescue_rungs(self):
        assert ResiliencePolicy(escalation="full").rungs == (
            "lu", "equilibrated", "gmin", "lstsq",
        )

    def test_source_stepping_is_full_only(self):
        assert not ResiliencePolicy(escalation="safe").source_stepping_enabled
        assert ResiliencePolicy(escalation="full").source_stepping_enabled
        assert not ResiliencePolicy(
            escalation="full", source_steps=()
        ).source_stepping_enabled


class TestValidation:
    def test_unknown_escalation_rejected(self):
        with pytest.raises(ValueError):
            ResiliencePolicy(escalation="heroic")

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            ResiliencePolicy(max_retries=-1)
        with pytest.raises(ValueError):
            ResiliencePolicy(max_step_halvings=-1)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ResiliencePolicy().escalation = "off"


class TestFromEnv:
    def test_empty_means_default(self):
        assert ResiliencePolicy.from_env("") == ResiliencePolicy()
        assert ResiliencePolicy.from_env("").escalation == "safe"

    def test_each_mode(self):
        for mode in ("off", "safe", "full"):
            assert ResiliencePolicy.from_env(mode).escalation == mode

    def test_whitespace_and_case_tolerated(self):
        assert ResiliencePolicy.from_env(" FULL ").escalation == "full"

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            ResiliencePolicy.from_env("turbo")

    def test_default_policy_is_the_module_singleton(self):
        assert default_policy() is DEFAULT_POLICY
