"""The matrix-free krylov rung and its fallback into the direct chain.

Covers the PR 9 solve-tier contract: an :class:`OperatorSystem` input
prepends a preconditioned-GMRES rung to the escalation chain; the same
system expressed dense / sparse / operator yields the same answer; a
stagnating Krylov solve falls back to the materialized direct path and
records the downgrade; and the lstsq rescue rung refuses to densify
arbitrarily large sparse systems.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.circuit.linalg import (
    LSTSQ_DENSE_LIMIT,
    OperatorSystem,
    ResilientFactorization,
    SingularCircuitError,
    resilient_solve,
)
from repro.obs import metrics as obs_metrics
from repro.resilience import ResiliencePolicy, RunReport, activate, inject_faults

SAFE = ResiliencePolicy(escalation="safe")
FULL = ResiliencePolicy(escalation="full")


def _dense_system(n=24, seed=3, dtype=complex):
    """A well-conditioned diagonally dominant test matrix and RHS."""
    rng = np.random.default_rng(seed)
    a = rng.normal(size=(n, n)) + n * np.eye(n)
    if dtype is complex:
        a = a + 1j * rng.normal(size=(n, n)) * 0.1
    b = rng.normal(size=n) + (1j * rng.normal(size=n) if dtype is complex else 0.0)
    return a.astype(dtype), b.astype(dtype)


def _operator_system(a, lowrank_cols=0, seed=11):
    """Wrap dense ``a`` as an OperatorSystem.

    With ``lowrank_cols > 0``, splits ``a = precond + U @ V`` with a
    random rank-``lowrank_cols`` far field, exercising the Woodbury
    branch of the preconditioner.
    """
    n = a.shape[0]
    if lowrank_cols:
        rng = np.random.default_rng(seed)
        u = rng.normal(size=(n, lowrank_cols)).astype(a.dtype)
        v = rng.normal(size=(lowrank_cols, n)).astype(a.dtype)
        scale = np.abs(a).max() / max(np.abs(u @ v).max(), 1e-300)
        u = u * (0.05 * scale)
        precond = sp.csc_matrix(a - u @ v)
        lowrank = (u, v)
    else:
        precond = sp.csc_matrix(a)
        lowrank = None
    return OperatorSystem(
        matvec=lambda x: a @ x,
        precond=precond,
        materialize=lambda: np.asarray(a),
        shape=a.shape,
        dtype=a.dtype,
        lowrank=lowrank,
    )


def _as_form(a, form):
    if form == "dense":
        return a
    if form == "csr":
        return sp.csr_matrix(a)
    if form == "operator":
        return _operator_system(a)
    raise ValueError(form)


class TestChainOverMatrixForms:
    @pytest.mark.parametrize("form", ["dense", "csr", "operator"])
    def test_clean_solve_agrees_across_forms(self, form):
        a, b = _dense_system()
        x_ref = np.linalg.solve(a, b)
        with inject_faults():
            rf = ResilientFactorization(_as_form(a, form), site="t", policy=SAFE)
            x = rf.solve(b)
        assert np.allclose(x, x_ref, rtol=1e-10, atol=1e-12)

    @pytest.mark.parametrize("form", ["dense", "csr", "operator"])
    def test_winner_rung_per_form(self, form):
        a, b = _dense_system()
        with inject_faults():
            rf = ResilientFactorization(_as_form(a, form), site="t", policy=SAFE)
            rf.solve(b)
        expected = "krylov" if form == "operator" else "lu"
        assert rf.report.winner == expected

    @pytest.mark.parametrize("form", ["dense", "csr", "operator"])
    def test_real_companion_dtype(self, form):
        a, b = _dense_system(dtype=float)
        with inject_faults():
            x = resilient_solve(_as_form(a, form), b, site="t", policy=SAFE)
        assert np.isrealobj(x) or np.allclose(x.imag, 0.0)
        assert np.allclose(a @ x, b, rtol=1e-9, atol=1e-12)


class TestKrylovRung:
    def test_woodbury_lowrank_preconditioner(self):
        a, b = _dense_system(n=40)
        system = _operator_system(a, lowrank_cols=5)
        with inject_faults():
            rf = ResilientFactorization(system, site="t", policy=SAFE)
            x = rf.solve(b)
        assert rf.report.winner == "krylov"
        assert np.allclose(a @ x, b, rtol=1e-9, atol=1e-12)

    def test_metrics_incremented(self):
        a, b = _dense_system()
        solves0 = obs_metrics.counter("solver.krylov_solves").value
        with inject_faults():
            resilient_solve(_operator_system(a), b, site="t", policy=SAFE)
        assert obs_metrics.counter("solver.krylov_solves").value == solves0 + 1

    def test_reuses_factorization_across_solves(self):
        a, _ = _dense_system()
        rng = np.random.default_rng(5)
        with inject_faults():
            rf = ResilientFactorization(_operator_system(a), site="t", policy=SAFE)
            for _ in range(3):
                b = rng.normal(size=a.shape[0]) + 1j * rng.normal(size=a.shape[0])
                assert np.allclose(a @ rf.solve(b), b, rtol=1e-9, atol=1e-12)
        assert rf.report.winner == "krylov"

    def test_requires_operator_input(self):
        # The krylov rung never appears for plain matrices: policy rungs
        # for a dense input must not contain it.
        a, _ = _dense_system()
        rf = ResilientFactorization(a, site="t", policy=SAFE)
        assert "krylov" not in rf._rungs


class TestKrylovFallback:
    #: Two GMRES iterations against an identity preconditioner cannot
    #: reach machine-level backward error on a random dense system, so
    #: the rung exhausts its budget and stagnates deterministically.
    TIGHT = ResiliencePolicy(
        escalation="safe", krylov_restart=2, krylov_maxiter=1,
        krylov_tol=1e-30, krylov_residual_tol=1e-15,
    )

    def _stagnating_system(self, n=18, seed=9):
        """Operator whose preconditioner is useless (identity).

        Under :attr:`TIGHT`'s two-iteration budget GMRES cannot meet the
        backward-error acceptance, so the chain must materialize the
        operator and fall back to the direct rungs.
        """
        rng = np.random.default_rng(seed)
        a = rng.normal(size=(n, n)) + 0.1 * np.eye(n)
        return a, OperatorSystem(
            matvec=lambda x: a @ x,
            precond=sp.identity(n, format="csc"),
            materialize=lambda: np.asarray(a),
            shape=a.shape,
            dtype=float,
        )

    def test_stagnation_falls_back_to_dense_direct(self):
        _, system = self._stagnating_system()
        b = np.ones(system.shape[0])
        fallbacks0 = obs_metrics.counter("solver.krylov_fallbacks").value
        stagnations0 = obs_metrics.counter("solver.krylov_stagnations").value
        with inject_faults():
            rf = ResilientFactorization(system, site="t", policy=self.TIGHT)
            x = rf.solve(b)
        # The answer comes from the materialized matrix via LU.
        assert np.allclose(system.materialize() @ x, b, rtol=1e-9, atol=1e-12)
        assert rf.report.winner == "lu"
        assert [a.rung for a in rf.report.attempts][0] == "krylov"
        assert obs_metrics.counter("solver.krylov_fallbacks").value == fallbacks0 + 1
        assert (
            obs_metrics.counter("solver.krylov_stagnations").value
            == stagnations0 + 1
        )

    def test_fallback_records_run_report_downgrade(self):
        _, system = self._stagnating_system()
        b = np.ones(system.shape[0])
        report = RunReport()
        with inject_faults(), activate(report):
            resilient_solve(system, b, site="t", policy=self.TIGHT)
        downgrades = report.downgrades
        assert len(downgrades) == 1
        assert "krylov" in downgrades[0].detail

    def test_materializes_at_most_once(self):
        _, system = self._stagnating_system()
        calls = []
        true_materialize = system.materialize
        system.materialize = lambda: calls.append(1) or true_materialize()
        b = np.ones(system.shape[0])
        with inject_faults():
            rf = ResilientFactorization(system, site="t", policy=self.TIGHT)
            rf.solve(b)
            rf.solve(2.0 * b)
        assert len(calls) == 1

    def test_singular_precond_escalates_not_crashes(self):
        # A singular preconditioner must fail the krylov rung cleanly
        # and hand over to the direct chain on the materialized matrix.
        n = 12
        rng = np.random.default_rng(2)
        a = rng.normal(size=(n, n)) + n * np.eye(n)
        system = OperatorSystem(
            matvec=lambda x: a @ x,
            precond=sp.csc_matrix((n, n)),  # all-zero: splu must fail
            materialize=lambda: np.asarray(a),
            shape=a.shape,
            dtype=float,
        )
        b = np.ones(n)
        with inject_faults():
            x = resilient_solve(system, b, site="t", policy=self.TIGHT)
        assert np.allclose(a @ x, b, rtol=1e-9, atol=1e-12)


class TestLstsqSizeGuard:
    def test_large_sparse_singular_system_is_refused(self):
        # Singular at grid scale: every cheaper rung fails, and the
        # lstsq rung must refuse to densify instead of allocating an
        # O(n^2) Gram matrix.
        n = LSTSQ_DENSE_LIMIT + 1
        singular = sp.eye(n, format="csr") * 0.0
        b = np.ones(n)
        with inject_faults():
            with pytest.raises(SingularCircuitError) as excinfo:
                resilient_solve(singular, b, site="t", policy=FULL)
        message = str(excinfo.value)
        assert "refuses to densify" in message
        assert "fix the topology" in message

    def test_small_sparse_singular_system_still_rescued(self):
        # Below the limit the rung still works: a consistent singular
        # system gets its minimum-norm solution.
        n = 8
        a = sp.csr_matrix(np.diag([1.0] * (n - 1) + [0.0]))
        b = np.zeros(n)
        b[0] = 1.0
        with inject_faults():
            x = resilient_solve(a, b, site="t", policy=FULL)
        assert np.allclose((a @ x)[0], 1.0, rtol=1e-6)
