"""``repro resume``: finishing a run from nothing but its .ckpt file."""

import numpy as np
import pytest

from repro.circuit.netlist import GROUND, Circuit
from repro.circuit.transient import transient_analysis
from repro.circuit.waveforms import Ramp
from repro.resilience import (
    CheckpointConfig,
    FaultSpec,
    InjectedFault,
    ResiliencePolicy,
    inject_faults,
)
from repro.resilience.checkpoint import (
    CheckpointError,
    CheckpointMismatch,
    load_checkpoint,
    save_checkpoint,
)
from repro.resilience.resume import describe, resume_transient

BRITTLE = ResiliencePolicy(
    escalation="safe", max_retries=0, max_step_halvings=0
)
T_STOP, DT = 1e-9, 1e-12


def _line():
    c = Circuit("resume-line")
    c.add_vsource("vin", "in", GROUND, Ramp(0.0, 1.0, 20e-12, 30e-12))
    c.add_resistor("rs", "in", "a", 25.0)
    c.add_inductor("l1", "a", "out", 2e-9)
    c.add_capacitor("cl", "out", GROUND, 100e-15)
    return c


@pytest.fixture()
def killed_run(tmp_path):
    """A transient checkpoint left behind by a mid-run 'crash'."""
    path = tmp_path / "crashed.ckpt"
    with inject_faults(FaultSpec("transient.step", "raise", after=500)):
        with pytest.raises(InjectedFault):
            transient_analysis(
                _line(), T_STOP, DT, policy=BRITTLE,
                checkpoint=CheckpointConfig(path, interval=100),
            )
    return path


class TestResumeTransient:
    def test_finishes_from_the_ckpt_file_alone(self, killed_run):
        # The resume path knows nothing but the file: the circuit comes
        # from the embedded deck, the state from the arrays.
        with inject_faults():
            baseline = transient_analysis(_line(), T_STOP, DT, policy=BRITTLE)
            result = resume_transient(killed_run)
        assert len(result.times) == len(baseline.times)
        for node in ("in", "a", "out"):
            scale = float(np.abs(baseline.voltage(node)).max()) or 1.0
            err = float(
                np.abs(result.voltage(node) - baseline.voltage(node)).max()
            )
            assert err / scale <= 1e-9
        assert result.report.by_kind("resume")
        assert not killed_run.exists()

    def test_keep_preserves_the_file(self, killed_run):
        with inject_faults():
            resume_transient(killed_run, keep=True)
        assert killed_run.exists()

    def test_describe_summarizes_without_resuming(self, killed_run):
        text = describe(killed_run)
        assert "transient checkpoint" in text
        assert "emergency" in text
        assert "resumable from CLI: yes" in text
        assert killed_run.exists()  # describe is read-only

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        save_checkpoint(path, "loop-sweep", {"fingerprint": {}}, {})
        with pytest.raises(CheckpointMismatch):
            resume_transient(path)

    def test_missing_deck_is_a_clear_error(self, killed_run):
        snap = load_checkpoint(killed_run)
        del snap.meta["deck"]
        save_checkpoint(killed_run, "transient", snap.meta, snap.arrays)
        with pytest.raises(CheckpointError) as err:
            resume_transient(killed_run)
        assert "no embedded SPICE deck" in str(err.value)


class TestResumeCLI:
    def test_info_flag(self, killed_run, capsys):
        from repro.cli import main

        assert main(["resume", str(killed_run), "--info"]) == 0
        out = capsys.readouterr().out
        assert "transient checkpoint" in out

    def test_full_cli_resume_writes_csv(self, killed_run, tmp_path, capsys):
        from repro.cli import main

        csv = tmp_path / "waves.csv"
        with inject_faults():
            code = main(["resume", str(killed_run), "--out", str(csv)])
        assert code == 0
        out = capsys.readouterr().out
        assert "resumed transient" in out
        table = np.genfromtxt(csv, delimiter=",", names=True)
        assert len(table) == int(round(T_STOP / DT)) + 1
        assert "out" in table.dtype.names

    def test_cli_reports_unreadable_checkpoint(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.ckpt"
        bad.write_bytes(b"not a checkpoint")
        assert main(["resume", str(bad)]) == 1
        assert "resume failed" in capsys.readouterr().out
