"""Crash consistency of checkpointed parallel sweeps under real SIGKILLs.

The scenario-store side lives in ``tests/scenarios/test_crash_consistency``;
this module covers the ``.ckpt`` side: a parallel loop-impedance sweep
that loses a worker mid-flight still matches the serial sweep bit for
bit, and a sweep whose parent process is SIGKILLed leaves a resumable
checkpoint that converges to the serial answer.
"""

import os
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import numpy as np
import pytest

from repro.loop.extractor import LoopPort, extract_loop_impedance
from repro.resilience import faults
from repro.resilience.checkpoint import CheckpointConfig, load_checkpoint
from repro.resilience.faults import inject_faults
from repro.resilience.supervisor import SupervisorConfig

REPO_ROOT = Path(__file__).resolve().parents[2]
FREQS = np.logspace(8, 10, 6)


def _port(ports):
    return LoopPort(
        signal=ports["driver"],
        reference=ports["gnd_driver"],
        short_signal=ports["receiver"],
        short_reference=ports["gnd_receiver"],
    )


def _clean_env():
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    for name in (
        "REPRO_FAULTS", "REPRO_WORKERS", "REPRO_DEADLINE",
        "REPRO_TIME_BUDGET", "REPRO_WORKER_RLIMIT_MB",
    ):
        env.pop(name, None)
    return env


class TestWorkerKill:
    def test_killed_worker_still_matches_serial(
        self, tmp_path, signal_grid_structure, monkeypatch
    ):
        layout, ports = signal_grid_structure
        marker = tmp_path / "killed"

        def crash_once(site):
            if site != "perf.worker":
                return
            try:
                fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                return
            os.close(fd)
            time.sleep(0.3)
            os._exit(13)

        with inject_faults():
            baseline = extract_loop_impedance(
                layout, _port(ports), FREQS,
                max_segment_length=150e-6, workers=1,
            )
        monkeypatch.setattr(faults, "maybe_disrupt", crash_once)
        monkeypatch.setenv("REPRO_DEADLINE", "30")  # harmless; exercises plumbing
        path = tmp_path / "worker_kill.ckpt"
        with inject_faults():
            survived = extract_loop_impedance(
                layout, _port(ports), FREQS,
                max_segment_length=150e-6, workers=2,
                checkpoint=CheckpointConfig(path, interval=1),
            )
        assert marker.exists()  # the worker really died
        assert np.array_equal(survived.impedance, baseline.impedance)
        assert survived.report.by_kind("worker-lost")
        assert survived.report.by_kind("restart")
        assert not path.exists()  # completed sweep cleans its checkpoint


DRIVER = """
    import pathlib
    import time

    import numpy as np

    import repro.resilience.faults as faults
    from repro.geometry import build_signal_over_grid
    from repro.loop.extractor import LoopPort, extract_loop_impedance
    from repro.resilience.checkpoint import CheckpointConfig

    def lag(site):
        if site == "perf.worker":
            time.sleep(0.7)  # widen the kill window; results are unchanged

    faults.maybe_disrupt = lag  # forked pool workers inherit the patch

    layout, ports = build_signal_over_grid(
        length=300e-6, returns_per_side=2, pitch=8e-6
    )
    port = LoopPort(
        signal=ports["driver"],
        reference=ports["gnd_driver"],
        short_signal=ports["receiver"],
        short_reference=ports["gnd_receiver"],
    )
    extract_loop_impedance(
        layout, port, np.logspace(8, 10, 6),
        max_segment_length=150e-6, workers=2,
        checkpoint=CheckpointConfig(pathlib.Path(r"%s"), interval=1),
    )
    print("SWEEP-FINISHED")
"""


class TestParentKill:
    def test_sigkilled_parent_leaves_a_resumable_checkpoint(
        self, tmp_path, signal_grid_structure
    ):
        layout, ports = signal_grid_structure
        path = tmp_path / "parent_kill.ckpt"
        driver = tmp_path / "driver.py"
        driver.write_text(textwrap.dedent(DRIVER % path))
        proc = subprocess.Popen(
            [sys.executable, str(driver)], env=_clean_env(),
            cwd=str(REPO_ROOT), stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        try:
            # Kill the parent as soon as a periodic checkpoint lands.
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                if path.exists():
                    break
                if proc.poll() is not None:
                    pytest.fail(
                        "driver exited before it could be killed: "
                        + proc.stderr.read().decode()
                    )
                time.sleep(0.02)
            else:
                pytest.fail("driver never wrote a checkpoint")
            proc.kill()
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.stdout.close()
            proc.stderr.close()

        snap = load_checkpoint(path)
        done = int(snap.arrays["done"].sum())
        assert 0 < done < len(FREQS)
        with inject_faults():
            baseline = extract_loop_impedance(
                layout, _port(ports), FREQS,
                max_segment_length=150e-6, workers=1,
            )
            resumed = extract_loop_impedance(
                layout, _port(ports), FREQS,
                max_segment_length=150e-6, workers=2,
                checkpoint=CheckpointConfig(path, interval=2),
            )
        assert resumed.report.by_kind("resume")
        assert np.array_equal(resumed.impedance, baseline.impedance)
        assert not path.exists()
