"""Checkpoint files, fingerprints, and kill/resume round trips."""

import numpy as np
import pytest

from repro.circuit.netlist import GROUND, Circuit
from repro.circuit.transient import transient_analysis
from repro.circuit.waveforms import Ramp
from repro.resilience import (
    CheckpointConfig,
    FaultSpec,
    InjectedFault,
    ResiliencePolicy,
    inject_faults,
)
from repro.resilience.checkpoint import (
    Checkpoint,
    CheckpointError,
    CheckpointMismatch,
    load_checkpoint,
    save_checkpoint,
    verify_fingerprint,
)

#: No retries, no halvings: the first injected fault is fatal, which is
#: exactly what the kill/resume tests need.
BRITTLE = ResiliencePolicy(
    escalation="safe", max_retries=0, max_step_halvings=0
)


def _rlc_line():
    """A small RLC line driven by a ramp: SPICE-expressible, oscillatory."""
    c = Circuit("ckpt-line")
    c.add_vsource("vin", "in", GROUND, Ramp(0.0, 1.0, 20e-12, 30e-12))
    c.add_resistor("rs", "in", "a", 25.0)
    c.add_inductor("l1", "a", "b", 2e-9)
    c.add_resistor("rl", "b", "out", 5.0)
    c.add_capacitor("cl", "out", GROUND, 100e-15)
    c.add_capacitor("ca", "a", GROUND, 20e-15)
    return c


T_STOP, DT = 1e-9, 1e-12  # 1000 steps


class TestFileFormat:
    def test_save_load_roundtrip(self, tmp_path):
        path = tmp_path / "run.ckpt"
        save_checkpoint(
            path, "transient", {"fingerprint": {"n": 3}, "step": 7},
            {"x": np.arange(3.0)},
        )
        snap = load_checkpoint(path)
        assert isinstance(snap, Checkpoint)
        assert snap.kind == "transient"
        assert snap.meta["step"] == 7
        assert np.array_equal(snap.arrays["x"], np.arange(3.0))

    def test_non_checkpoint_file_rejected(self, tmp_path):
        path = tmp_path / "junk.ckpt"
        path.write_bytes(b"this is not an npz container")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_npz_without_header_rejected(self, tmp_path):
        path = tmp_path / "plain.ckpt"
        with open(path, "wb") as f:
            np.savez(f, x=np.zeros(2))
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_fingerprint_mismatch_names_the_keys(self, tmp_path):
        path = tmp_path / "run.ckpt"
        save_checkpoint(
            path, "transient",
            {"fingerprint": {"dt": 1e-12, "size": 5}}, {},
        )
        snap = load_checkpoint(path)
        with pytest.raises(CheckpointMismatch) as err:
            verify_fingerprint(
                snap, "transient", {"dt": 2e-12, "size": 5}, path
            )
        assert "dt" in str(err.value)

    def test_kind_mismatch_rejected(self, tmp_path):
        path = tmp_path / "run.ckpt"
        save_checkpoint(path, "loop-sweep", {"fingerprint": {}}, {})
        with pytest.raises(CheckpointMismatch):
            verify_fingerprint(load_checkpoint(path), "transient", {}, path)

    def test_interval_validated(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointConfig(tmp_path / "x.ckpt", interval=0)


class TestTransientKillResume:
    def test_killed_run_resumes_and_matches_uninterrupted(self, tmp_path):
        # Acceptance: a transient killed mid-run resumes from its
        # checkpoint and the final waveform matches an uninterrupted run
        # to <= 1e-9 relative error.
        circuit = _rlc_line()
        with inject_faults():
            baseline = transient_analysis(
                circuit, T_STOP, DT, policy=BRITTLE
            )

        path = tmp_path / "line.ckpt"
        config = CheckpointConfig(path, interval=100)
        with inject_faults(FaultSpec("transient.step", "raise", after=600)):
            with pytest.raises(InjectedFault):
                transient_analysis(
                    _rlc_line(), T_STOP, DT, policy=BRITTLE,
                    checkpoint=config,
                )
        assert path.exists()  # emergency snapshot survived the "crash"
        killed = load_checkpoint(path)
        assert killed.meta["reason"].startswith("emergency")
        assert 0 < killed.meta["step"] < 1000

        with inject_faults():
            resumed = transient_analysis(
                _rlc_line(), T_STOP, DT, policy=BRITTLE,
                checkpoint=CheckpointConfig(path, interval=100),
            )
        scale = float(np.abs(baseline.data).max())
        rel_err = float(np.abs(resumed.data - baseline.data).max()) / scale
        assert rel_err <= 1e-9
        assert np.array_equal(resumed.times, baseline.times)
        assert resumed.report.by_kind("resume")
        assert not path.exists()  # finished run cleans up its checkpoint

    def test_periodic_checkpoints_written_and_cleaned(self, tmp_path):
        path = tmp_path / "periodic.ckpt"
        with inject_faults():
            result = transient_analysis(
                _rlc_line(), T_STOP, DT, policy=BRITTLE,
                checkpoint=CheckpointConfig(path, interval=250),
            )
        assert result.report.by_kind("checkpoint")
        assert not path.exists()

    def test_keep_leaves_the_file(self, tmp_path):
        path = tmp_path / "kept.ckpt"
        with inject_faults():
            transient_analysis(
                _rlc_line(), T_STOP, DT, policy=BRITTLE,
                checkpoint=CheckpointConfig(path, interval=250, keep=True),
            )
        assert path.exists()
        snap = load_checkpoint(path)
        assert snap.kind == "transient"
        assert "deck" in snap.meta  # the RLC line is SPICE-expressible

    def test_mismatched_checkpoint_refuses_to_resume(self, tmp_path):
        path = tmp_path / "stale.ckpt"
        with inject_faults(FaultSpec("transient.step", "raise", after=600)):
            with pytest.raises(InjectedFault):
                transient_analysis(
                    _rlc_line(), T_STOP, DT, policy=BRITTLE,
                    checkpoint=CheckpointConfig(path, interval=100),
                )
        with inject_faults():
            with pytest.raises(CheckpointMismatch):
                transient_analysis(  # different dt => different run
                    _rlc_line(), T_STOP, 2e-12, policy=BRITTLE,
                    checkpoint=CheckpointConfig(path, interval=100),
                )


class TestLoopSweepKillResume:
    @pytest.fixture(scope="class")
    def loop_setup(self, signal_grid_structure):
        from repro.geometry.clocktree import TapPoint  # noqa: F401
        from repro.loop.extractor import LoopPort

        layout, ports = signal_grid_structure
        port = LoopPort(
            signal=ports["driver"], reference=ports["gnd_driver"],
            short_signal=ports["receiver"],
            short_reference=ports["gnd_receiver"],
        )
        return layout, port

    def test_killed_sweep_resumes_where_it_stopped(self, tmp_path, loop_setup):
        from repro.loop.extractor import extract_loop_impedance

        layout, port = loop_setup
        freqs = np.logspace(8, 10, 6)
        with inject_faults():
            baseline = extract_loop_impedance(
                layout, port, freqs, policy=BRITTLE
            )

        path = tmp_path / "sweep.ckpt"
        with inject_faults(FaultSpec("loop.freq", "raise", after=3)):
            with pytest.raises(InjectedFault):
                extract_loop_impedance(
                    layout, port, freqs, policy=BRITTLE,
                    checkpoint=CheckpointConfig(path, interval=2),
                )
        snap = load_checkpoint(path)
        assert snap.kind == "loop-sweep"
        done = snap.arrays["done"]
        assert 0 < int(done.sum()) < len(freqs)

        with inject_faults():
            resumed = extract_loop_impedance(
                layout, port, freqs, policy=BRITTLE,
                checkpoint=CheckpointConfig(path, interval=2),
            )
        assert np.allclose(
            resumed.impedance, baseline.impedance, rtol=1e-9, atol=0.0
        )
        assert resumed.report.by_kind("resume")
        assert not path.exists()
