"""Supervisor: deadlines, watchdog kills, bisect/quarantine, breaker.

The pool tests run real ``ProcessPoolExecutor`` workers executing the
toy chunk bodies below.  "Fail once, then succeed" is coordinated
through sentinel files (``O_CREAT | O_EXCL``: exactly one claimant), so
every scenario is deterministic: the first execution of a chunk hangs /
dies / OOMs, the reissued execution completes normally.
"""

import os
import subprocess
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import numpy as np
import pytest

from repro.resilience.budget import TimeBudget
from repro.resilience.report import RunReport
from repro.resilience.supervisor import (
    DEADLINE_ENV,
    RLIMIT_ENV,
    TIME_BUDGET_ENV,
    Supervisor,
    SupervisorConfig,
    _apply_rlimit,
    supervised_init,
)

# -- toy chunk bodies (module-level: pool workers resolve them by name) ------


def _claim(path):
    """Atomically claim a sentinel; True for exactly one claimant."""
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


def _squares(root, idx):
    return [i * i for i in idx]


def _hang_once(root, idx):
    if _claim(Path(root) / ("hang-" + "-".join(map(str, idx)))):
        time.sleep(60.0)
    return [i * i for i in idx]


def _crash_once(root, idx):
    if _claim(Path(root) / ("crash-" + "-".join(map(str, idx)))):
        time.sleep(0.3)  # long enough for the watchdog to stamp us running
        os._exit(13)
    return [i * i for i in idx]


def _oom_once(root, idx):
    if _claim(Path(root) / ("oom-" + "-".join(map(str, idx)))):
        raise MemoryError("injected worker OOM")
    return [i * i for i in idx]


def _poison_three(root, idx):
    if 3 in idx:
        time.sleep(0.3)
        os._exit(13)
    return [i * i for i in idx]


def _crash_always(root, idx):
    os._exit(13)


def _hang_always(root, idx):
    time.sleep(60.0)
    return [i * i for i in idx]


def _raise_value_error(root, idx):
    raise ValueError("application failure, not a process failure")


# -- harness -----------------------------------------------------------------


def _run(worker, chunks, cfg, root, width=2):
    """Drive one supervised run; returns (results, quarantined, stats, report)."""
    results = {}
    quarantined = []
    report = RunReport()

    def make_executor():
        return ProcessPoolExecutor(max_workers=width)

    def submit(pool, key, idx):
        return pool.submit(worker, str(root), [int(i) for i in idx])

    def on_result(idx, payload):
        for i, value in zip(idx, payload):
            results[int(i)] = value

    def solve_serial(idx):
        for i in idx:
            results[int(i)] = -int(i) - 1  # distinguishable from worker output

    def quarantine(point, reason):
        quarantined.append((point, reason))

    stats = Supervisor(
        executor=make_executor(),
        make_executor=make_executor,
        submit=submit,
        on_result=on_result,
        solve_serial=solve_serial,
        quarantine=quarantine,
        workers=width,
        config=cfg,
        report=report,
        stage="perf",
    ).run(chunks)
    return results, quarantined, stats, report


def _dummy_supervisor(cfg):
    """A Supervisor for exercising pure helper methods (no pool)."""
    return Supervisor(
        executor=None, make_executor=None, submit=None, on_result=None,
        solve_serial=None, quarantine=None, workers=1, config=cfg,
    )


class TestSupervisorConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SupervisorConfig(deadline=0.0)
        with pytest.raises(ValueError):
            SupervisorConfig(time_budget=-1.0)
        with pytest.raises(ValueError):
            SupervisorConfig(heartbeat=0.0)
        with pytest.raises(ValueError):
            SupervisorConfig(max_chunk_retries=-1)
        with pytest.raises(ValueError):
            SupervisorConfig(max_pool_restarts=-1)
        with pytest.raises(ValueError):
            SupervisorConfig(rlimit_mb=0)

    def test_from_env_reads_knobs(self, monkeypatch):
        monkeypatch.setenv(RLIMIT_ENV, "512")
        monkeypatch.setenv(DEADLINE_ENV, "2.5")
        monkeypatch.setenv(TIME_BUDGET_ENV, "60")
        cfg = SupervisorConfig.from_env()
        assert cfg.rlimit_mb == 512
        assert cfg.deadline == 2.5
        assert cfg.time_budget == 60.0

    def test_from_env_rejects_garbage_naming_the_value(self, monkeypatch):
        monkeypatch.setenv(DEADLINE_ENV, "soon")
        with pytest.raises(ValueError, match="REPRO_DEADLINE.*'soon'"):
            SupervisorConfig.from_env()
        monkeypatch.delenv(DEADLINE_ENV)
        monkeypatch.setenv(RLIMIT_ENV, "-4")
        with pytest.raises(ValueError, match="REPRO_WORKER_RLIMIT_MB"):
            SupervisorConfig.from_env()

    def test_overrides_beat_env_and_none_is_ignored(self, monkeypatch):
        monkeypatch.setenv(DEADLINE_ENV, "2.5")
        monkeypatch.setenv(TIME_BUDGET_ENV, "60")
        cfg = SupervisorConfig.from_env(deadline=9.0, time_budget=None)
        assert cfg.deadline == 9.0
        assert cfg.time_budget == 60.0


class TestDeadlineDerivation:
    def test_explicit_deadline_wins(self):
        sup = _dummy_supervisor(SupervisorConfig(deadline=5.0))
        sup.budget.observe(1, 100.0)
        assert sup._deadline_for(3) == 5.0

    def test_derived_from_estimate(self):
        sup = _dummy_supervisor(SupervisorConfig())
        sup.budget.observe(1, 0.2)
        assert sup._deadline_for(2) == pytest.approx(10.0 * 0.4)

    def test_derived_deadline_is_floored(self):
        sup = _dummy_supervisor(SupervisorConfig())
        sup.budget.observe(1, 1e-4)
        assert sup._deadline_for(1) == pytest.approx(1.0)  # min_deadline

    def test_capped_by_remaining_budget(self):
        clock_now = [100.0]
        sup = _dummy_supervisor(SupervisorConfig(deadline=5.0, time_budget=2.0))
        sup.budget = TimeBudget(2.0, clock=lambda: clock_now[0])
        sup.budget.start()
        clock_now[0] += 1.5
        assert sup._deadline_for(1) == pytest.approx(0.5)

    def test_unbounded_without_deadline_budget_or_estimate(self):
        assert _dummy_supervisor(SupervisorConfig())._deadline_for(4) is None


class TestSupervisedExecution:
    def test_clean_run(self, tmp_path):
        results, quarantined, stats, report = _run(
            _squares, [[0, 1], [2, 3]],
            SupervisorConfig(heartbeat=0.02), tmp_path,
        )
        assert results == {0: 0, 1: 1, 2: 4, 3: 9}
        assert quarantined == []
        assert stats.clean
        assert report.events == []

    def test_hung_chunk_is_killed_and_reissued(self, tmp_path):
        results, quarantined, stats, report = _run(
            _hang_once, [[0, 1], [2, 3]],
            SupervisorConfig(
                deadline=0.5, heartbeat=0.02, backoff_base=0.01,
            ),
            tmp_path,
        )
        assert results == {0: 0, 1: 1, 2: 4, 3: 9}
        assert quarantined == []
        assert stats.timeouts >= 1
        assert stats.restarts >= 1
        assert report.timeouts
        assert report.by_kind("restart")

    def test_crashed_worker_chunk_is_reissued(self, tmp_path):
        results, quarantined, stats, report = _run(
            _crash_once, [[0, 1], [2, 3]],
            SupervisorConfig(heartbeat=0.02, backoff_base=0.01),
            tmp_path,
        )
        assert results == {0: 0, 1: 1, 2: 4, 3: 9}
        assert quarantined == []
        assert stats.worker_losses >= 1
        assert stats.restarts >= 1
        assert report.by_kind("worker-lost")

    def test_memory_error_is_a_strike_not_a_crash(self, tmp_path):
        results, quarantined, stats, report = _run(
            _oom_once, [[0, 1], [2, 3]],
            SupervisorConfig(heartbeat=0.02, backoff_base=0.01),
            tmp_path,
        )
        assert results == {0: 0, 1: 1, 2: 4, 3: 9}
        assert quarantined == []
        assert stats.memory_errors == 2  # each chunk OOMs exactly once
        # A MemoryError comes back through the future: the pool survives.
        assert stats.restarts == 0

    def test_poison_point_is_bisected_down_and_quarantined(self, tmp_path):
        results, quarantined, stats, report = _run(
            _poison_three, [[0, 1], [2, 3]],
            SupervisorConfig(
                heartbeat=0.02, backoff_base=0.01,
                max_chunk_retries=1, max_pool_restarts=10,
            ),
            tmp_path,
        )
        assert results == {0: 0, 1: 1, 2: 4}
        assert [point for point, _ in quarantined] == [3]
        assert stats.bisections >= 1
        assert stats.quarantined == [3]
        assert report.by_kind("bisect")
        assert report.quarantines

    def test_breaker_trips_to_the_serial_path(self, tmp_path):
        results, quarantined, stats, report = _run(
            _crash_always, [[0, 1], [2, 3]],
            SupervisorConfig(
                heartbeat=0.02, backoff_base=0.01,
                max_chunk_retries=50, max_pool_restarts=1,
            ),
            tmp_path,
        )
        # Serial fallback answers (the -i - 1 marker), not worker answers.
        assert results == {0: -1, 1: -2, 2: -3, 3: -4}
        assert quarantined == []
        assert stats.breaker_tripped
        assert report.by_kind("breaker")

    def test_budget_exhaustion_quarantines_the_remainder(self, tmp_path):
        results, quarantined, stats, report = _run(
            _hang_always, [[0], [1], [2], [3]],
            SupervisorConfig(time_budget=0.4, heartbeat=0.02),
            tmp_path,
        )
        assert results == {}
        assert sorted(point for point, _ in quarantined) == [0, 1, 2, 3]
        assert all("budget" in reason for _, reason in quarantined)
        assert stats.budget_exhausted
        assert report.by_kind("budget-exhausted")

    def test_application_exception_propagates(self, tmp_path):
        with pytest.raises(ValueError, match="application failure"):
            _run(
                _raise_value_error, [[0, 1]],
                SupervisorConfig(heartbeat=0.02), tmp_path,
            )


class TestWorkerInit:
    def test_supervised_init_chains_the_inner_initializer(self):
        seen = []
        supervised_init(None, inner=seen.append, inner_args=("inner-ran",))
        assert seen == ["inner-ran"]

    def test_apply_rlimit_none_is_a_noop(self):
        _apply_rlimit(None)  # must not raise or touch limits

    def test_apply_rlimit_caps_address_space(self, tmp_path):
        # In a subprocess: the ceiling must not leak into the test runner.
        code = (
            "import resource\n"
            "from repro.resilience.supervisor import _apply_rlimit\n"
            "_apply_rlimit(4096)\n"
            "print(resource.getrlimit(resource.RLIMIT_AS)[0])\n"
        )
        env = dict(os.environ, PYTHONPATH="src")
        out = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True,
            cwd=str(Path(__file__).resolve().parents[2]), env=env,
        )
        assert out.returncode == 0, out.stderr
        assert int(out.stdout.strip()) == 4096 << 20
