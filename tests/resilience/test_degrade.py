"""Graceful sparsifier degradation: requested -> block-diagonal -> dense."""

import numpy as np
import pytest

from repro.extraction.partial_matrix import extract_partial_inductance
from repro.geometry.segment import Direction, Segment
from repro.resilience import (
    DegradationError,
    FaultSpec,
    RunReport,
    activate,
    inject_faults,
    sparsify_with_fallback,
)
from repro.sparsify.base import DenseInductance, Sparsifier
from repro.sparsify.block_diagonal import BlockDiagonalSparsifier
from repro.sparsify.stability import is_positive_definite
from repro.sparsify.truncation import TruncationSparsifier


@pytest.fixture(scope="module")
def long_parallel_bus():
    """Long tightly-coupled parallel wires.  Truncating at threshold 0.7
    keeps only the strongest couplings and goes (silently) indefinite --
    the paper's Section-4 negative control, and our degradation trigger."""
    segs = [
        Segment(net="s", layer="M6", direction=Direction.X,
                origin=(0.0, k * 2e-6, 7e-6), length=5000e-6,
                width=1e-6, thickness=0.5e-6, name=f"l{k}")
        for k in range(6)
    ]
    return extract_partial_inductance(segs)


class ExplodingSparsifier(Sparsifier):
    """Always fails -- deterministic stand-in for a broken strategy."""

    def apply(self, result):
        raise RuntimeError("exploding sparsifier: boom")


class IndefiniteSparsifier(Sparsifier):
    """Returns an indefinite matrix WITHOUT raising: the silent failure
    mode the passivity check exists to catch."""

    def apply(self, result):
        matrix = result.matrix.copy()
        matrix[0, 0] = -abs(matrix[0, 0])
        n = result.size
        from repro.sparsify.base import InductanceBlocks

        return InductanceBlocks(kind="L", blocks=[(list(range(n)), matrix)])


class TestDowngradeChain:
    def test_nonpassive_truncation_degrades_to_block_diagonal(
        self, long_parallel_bus
    ):
        # Acceptance: a sparsification that breaks passivity degrades to
        # block-diagonal and the downgrade lands in the RunReport.
        requested = TruncationSparsifier(threshold=0.7)
        raw = requested.apply(long_parallel_bus)
        assert not is_positive_definite(raw.blocks[0][1])  # trigger is real

        report = RunReport()
        with inject_faults():
            blocks, winner = sparsify_with_fallback(
                long_parallel_bus, requested, report=report,
            )
        assert winner.name == "blockdiagonal"
        assert is_positive_definite(blocks.to_dense(long_parallel_bus.size))
        downgrades = report.downgrades
        assert len(downgrades) == 1
        assert "truncation" in downgrades[0].detail
        assert "blockdiagonal" in downgrades[0].detail
        assert "not positive definite" in downgrades[0].detail

    def test_healthy_strategy_wins_without_downgrade(self, long_parallel_bus):
        report = RunReport()
        with inject_faults():
            blocks, winner = sparsify_with_fallback(
                long_parallel_bus, BlockDiagonalSparsifier(), report=report,
            )
        assert winner.name == "blockdiagonal"
        assert report.clean

    def test_injected_failures_walk_the_chain_to_dense(self, long_parallel_bus):
        report = RunReport()
        with inject_faults(
            FaultSpec("sparsify.blockdiagonal", "raise"),
        ):
            blocks, winner = sparsify_with_fallback(
                long_parallel_bus, ExplodingSparsifier(), report=report,
            )
        assert isinstance(winner, DenseInductance)
        assert len(report.downgrades) == 2
        dense = blocks.to_dense(long_parallel_bus.size)
        assert np.allclose(dense, long_parallel_bus.matrix)

    def test_all_rungs_failing_raises_degradation_error(self, long_parallel_bus):
        with inject_faults(FaultSpec("sparsify.*", "raise", max_hits=None)):
            with pytest.raises(DegradationError) as err:
                sparsify_with_fallback(
                    long_parallel_bus, TruncationSparsifier(),
                    report=RunReport(),
                )
        assert "all sparsification fallbacks failed" in str(err.value)

    def test_silently_nonpassive_result_is_caught(self, long_parallel_bus):
        report = RunReport()
        with inject_faults():
            _, winner = sparsify_with_fallback(
                long_parallel_bus, IndefiniteSparsifier(), report=report,
            )
        assert not isinstance(winner, IndefiniteSparsifier)
        assert "not positive definite" in report.downgrades[0].detail

    def test_passivity_check_can_be_waived(self, long_parallel_bus):
        # The ablation benchmark needs the indefinite matrix on purpose.
        with inject_faults():
            blocks, winner = sparsify_with_fallback(
                long_parallel_bus, TruncationSparsifier(threshold=0.7),
                report=RunReport(), check_passivity=False,
            )
        assert winner.name == "truncation"
        assert not is_positive_definite(blocks.to_dense(long_parallel_bus.size))

    def test_uses_active_run_report_when_none_passed(self, long_parallel_bus):
        ambient = RunReport()
        with activate(ambient):
            with inject_faults():
                sparsify_with_fallback(
                    long_parallel_bus, TruncationSparsifier(threshold=0.7),
                )
        assert ambient.downgrades


class TestPEECIntegration:
    def test_build_peec_model_downgrade_vs_strict(self, small_grid_layout):
        from repro.peec.model import PEECOptions, build_peec_model
        from repro.resilience.report import RunReport, activate

        report = RunReport()
        with inject_faults():
            with activate(report):
                model = build_peec_model(
                    small_grid_layout,
                    PEECOptions(sparsifier=ExplodingSparsifier(),
                                fallback=True),
                )
        assert model.circuit is not None
        assert report.downgrades

        with inject_faults():
            with pytest.raises(RuntimeError, match="boom"):
                build_peec_model(
                    small_grid_layout,
                    PEECOptions(sparsifier=ExplodingSparsifier(),
                                fallback=False),
                )
