"""TimeBudget: countdown, exhaustion, and the online per-point model."""

import pytest

from repro.resilience.budget import EWMA_ALPHA, TimeBudget


class FakeClock:
    """Deterministic monotonic clock for driving budgets in tests."""

    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestBudgetCountdown:
    def test_rejects_non_positive_total(self):
        with pytest.raises(ValueError):
            TimeBudget(0.0)
        with pytest.raises(ValueError):
            TimeBudget(-5.0)

    def test_unbounded_never_exhausts(self):
        clock = FakeClock()
        budget = TimeBudget(None, clock=clock)
        budget.start()
        clock.advance(1e6)
        assert budget.remaining() is None
        assert not budget.exhausted()
        assert budget.elapsed() == pytest.approx(1e6)

    def test_elapsed_is_zero_before_start(self):
        budget = TimeBudget(10.0, clock=FakeClock())
        assert budget.elapsed() == 0.0

    def test_counts_down_to_exhaustion(self):
        clock = FakeClock()
        budget = TimeBudget(10.0, clock=clock)
        budget.start()
        clock.advance(4.0)
        assert budget.remaining() == pytest.approx(6.0)
        assert not budget.exhausted()
        clock.advance(7.0)
        assert budget.remaining() == 0.0
        assert budget.exhausted()

    def test_remaining_anchors_the_clock(self):
        # First use auto-starts, so remaining() is well-defined without
        # an explicit start().
        clock = FakeClock()
        budget = TimeBudget(10.0, clock=clock)
        assert budget.remaining() == pytest.approx(10.0)
        clock.advance(3.0)
        assert budget.remaining() == pytest.approx(7.0)

    def test_start_is_idempotent(self):
        clock = FakeClock()
        budget = TimeBudget(10.0, clock=clock)
        budget.start()
        clock.advance(5.0)
        budget.start()  # must not re-anchor
        assert budget.elapsed() == pytest.approx(5.0)


class TestPerPointModel:
    def test_no_estimate_before_first_observation(self):
        budget = TimeBudget()
        assert budget.per_point is None
        assert budget.estimate(4) is None

    def test_first_observation_seeds_exactly(self):
        budget = TimeBudget()
        budget.observe(4, 2.0)
        assert budget.per_point == pytest.approx(0.5)
        assert budget.estimate(6) == pytest.approx(3.0)

    def test_ewma_update(self):
        budget = TimeBudget()
        budget.observe(1, 1.0)
        budget.observe(1, 2.0)
        assert budget.per_point == pytest.approx(1.0 + EWMA_ALPHA * 1.0)

    def test_degenerate_observations_ignored(self):
        budget = TimeBudget()
        budget.observe(0, 1.0)
        budget.observe(2, -1.0)
        assert budget.per_point is None

    def test_repr_smoke(self):
        assert "unbounded" in repr(TimeBudget())
        budget = TimeBudget(30.0)
        budget.observe(2, 1.0)
        assert "30" in repr(budget)
