"""Deterministic fault injection: seeding, gating, env grammar."""

import time

import numpy as np
import pytest
import scipy.sparse as sp

from repro.resilience.faults import (
    FaultInjector,
    FaultSpec,
    InjectedFault,
    active_injector,
    chaos_specs,
    corrupt_matrix,
    corrupt_solution,
    inject_faults,
    injector_from_env,
    maybe_disrupt,
    maybe_fail,
)


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("x", "explode")

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            FaultSpec("x", "raise", probability=0.0)
        with pytest.raises(ValueError):
            FaultSpec("x", "raise", probability=1.5)

    def test_worker_process_kinds_are_valid(self):
        for kind in ("hang", "crash", "bigalloc"):
            assert FaultSpec("x", kind).kind == kind


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        spec = FaultSpec("site", "raise", probability=0.3, max_hits=None)
        a = FaultInjector((spec,), seed=42)
        b = FaultInjector((spec,), seed=42)
        pattern_a = [a.fires("site", ("raise",)) is not None for _ in range(200)]
        pattern_b = [b.fires("site", ("raise",)) is not None for _ in range(200)]
        assert pattern_a == pattern_b
        assert any(pattern_a) and not all(pattern_a)

    def test_different_seed_different_decisions(self):
        spec = FaultSpec("site", "raise", probability=0.3, max_hits=None)
        a = FaultInjector((spec,), seed=1)
        b = FaultInjector((spec,), seed=2)
        pattern_a = [a.fires("site", ("raise",)) is not None for _ in range(200)]
        pattern_b = [b.fires("site", ("raise",)) is not None for _ in range(200)]
        assert pattern_a != pattern_b


class TestGating:
    def test_max_hits(self):
        inj = FaultInjector((FaultSpec("s", "raise", max_hits=2),))
        hits = sum(inj.fires("s", ("raise",)) is not None for _ in range(10))
        assert hits == 2

    def test_after_skips_eligible_calls(self):
        inj = FaultInjector((FaultSpec("s", "raise", after=3),))
        fired_at = [
            k for k in range(10) if inj.fires("s", ("raise",)) is not None
        ]
        assert fired_at == [3]

    def test_fnmatch_site_patterns(self):
        inj = FaultInjector((FaultSpec("*.lu", "raise", max_hits=None),))
        assert inj.fires("transient.lu", ("raise",)) is not None
        assert inj.fires("dc.newton.lu", ("raise",)) is not None
        assert inj.fires("transient.gmin", ("raise",)) is None

    def test_kind_filter(self):
        inj = FaultInjector((FaultSpec("s", "nan"),))
        assert inj.fires("s", ("raise",)) is None
        assert inj.fires("s", ("nan",)) is not None

    def test_injection_log(self):
        inj = FaultInjector((FaultSpec("s", "singular"),))
        inj.fires("s", ("singular",))
        assert inj.injections == [("s", "singular")]


class TestContextManager:
    def test_hooks_fire_inside_context(self):
        with inject_faults(FaultSpec("here", "raise")):
            with pytest.raises(InjectedFault) as err:
                maybe_fail("here")
        assert err.value.site == "here"
        # Outside the context the hook is inert again.
        maybe_fail("here")

    def test_no_specs_suppresses_ambient(self):
        with inject_faults(FaultSpec("here", "raise", max_hits=None)):
            with inject_faults():  # suppression block
                maybe_fail("here")
            with pytest.raises(InjectedFault):
                maybe_fail("here")

    def test_corrupt_matrix_dense_and_sparse(self):
        a = np.eye(3)
        with inject_faults(FaultSpec("s", "singular", max_hits=None)):
            bad = corrupt_matrix("s", a)
            assert np.all(bad[0] == 0.0)
            assert a[0, 0] == 1.0  # original untouched
            bad_sp = corrupt_matrix("s", sp.csr_matrix(np.eye(3)))
            assert bad_sp.toarray()[0].sum() == 0.0

    def test_corrupt_solution(self):
        x = np.ones(3)
        with inject_faults(FaultSpec("s", "nan")):
            bad = corrupt_solution("s", x)
        assert np.isnan(bad[0])
        assert np.all(np.isfinite(x))


class TestEnvGrammar:
    def test_off_and_empty(self):
        assert injector_from_env("") is None
        assert injector_from_env("off") is None

    def test_chaos_default_seed(self):
        inj = injector_from_env("chaos")
        assert inj.seed == 0
        assert inj.specs == chaos_specs()

    def test_chaos_with_seed(self):
        assert injector_from_env("chaos-1234").seed == 1234

    def test_bad_values_rejected(self):
        with pytest.raises(ValueError):
            injector_from_env("chaos-xyz")
        with pytest.raises(ValueError):
            injector_from_env("mayhem")

    def test_active_injector_prefers_innermost(self):
        with inject_faults(FaultSpec("a", "raise")) as outer:
            with inject_faults(FaultSpec("b", "raise")) as inner:
                assert active_injector() is inner
            assert active_injector() is outer

    def test_chaos_includes_worker_process_faults(self):
        kinds = {s.kind for s in chaos_specs() if s.site == "*.worker"}
        assert kinds == {"hang", "crash", "bigalloc"}

    def test_deterministic_rule_list(self):
        inj = injector_from_env("*.worker=hang@0.5,loop.freq=raise")
        assert [(s.site, s.kind, s.probability) for s in inj.specs] == [
            ("*.worker", "hang", 0.5),
            ("loop.freq", "raise", 1.0),
        ]
        # Rules fire until further notice, not just once.
        assert all(s.max_hits is None for s in inj.specs)

    def test_rule_list_rejects_garbage(self):
        with pytest.raises(ValueError, match="site=kind"):
            injector_from_env("=hang")
        with pytest.raises(ValueError, match="probability"):
            injector_from_env("a.worker=hang@lots")
        with pytest.raises(ValueError, match="unknown fault kind"):
            injector_from_env("a.worker=explode")


class TestMaybeDisrupt:
    def test_noop_without_an_injector(self):
        with inject_faults():
            maybe_disrupt("anywhere")  # must not raise or sleep

    def test_hang_sleeps_for_the_configured_bound(self, monkeypatch):
        monkeypatch.setenv("REPRO_HANG_SECONDS", "0.05")
        with inject_faults(FaultSpec("s", "hang")):
            t0 = time.perf_counter()
            maybe_disrupt("s")
            elapsed = time.perf_counter() - t0
            assert elapsed >= 0.05
            # max_hits=1: the second call is inert.
            maybe_disrupt("s")

    def test_bigalloc_raises_memory_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_BIGALLOC_MB", "1")
        with inject_faults(FaultSpec("s", "bigalloc")):
            with pytest.raises(MemoryError, match="bigalloc"):
                maybe_disrupt("s")

    def test_kind_separation(self):
        # A "raise" rule never disrupts; a "hang" rule never raises.
        with inject_faults(FaultSpec("s", "raise", max_hits=None)):
            maybe_disrupt("s")
        with inject_faults(FaultSpec("s", "hang", max_hits=None)):
            maybe_fail("s")

    def test_bad_hang_bound_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_HANG_SECONDS", "forever")
        with inject_faults(FaultSpec("s", "hang")):
            with pytest.raises(ValueError, match="REPRO_HANG_SECONDS"):
                maybe_disrupt("s")
