"""FastHenry-style loop extraction."""

import numpy as np
import pytest

from repro.extraction.filaments import FilamentGrid
from repro.geometry import build_shielded_line, build_signal_over_grid
from repro.loop.extractor import (
    LoopExtractionResult,
    LoopPort,
    extract_loop_impedance,
)


def make_port(ports):
    return LoopPort(
        signal=ports["driver"],
        reference=ports["gnd_driver"],
        short_signal=ports["receiver"],
        short_reference=ports["gnd_receiver"],
    )


@pytest.fixture(scope="module")
def extraction(signal_grid_structure):
    layout, ports = signal_grid_structure
    freqs = np.logspace(7, 10.7, 8)
    return extract_loop_impedance(
        layout, make_port(ports), freqs, max_segment_length=150e-6
    )


class TestFrequencyTrends:
    def test_resistance_rises_with_frequency(self, extraction):
        r = extraction.resistance
        assert r[-1] > r[0]
        assert np.all(np.diff(r) > -1e-9)  # monotone (numerically)

    def test_inductance_falls_with_frequency(self, extraction):
        l = extraction.inductance
        assert l[-1] < l[0]
        assert np.all(np.diff(l) < 1e-15)

    def test_inductance_magnitude_sane(self, extraction):
        # A 300-um loop with ~8-um pitch returns: a few hundred pH/mm.
        l = extraction.inductance
        assert 1e-11 < l[0] < 1e-9

    def test_low_frequency_resistance_is_dc_resistance(
        self, signal_grid_structure
    ):
        layout, ports = signal_grid_structure
        res = extract_loop_impedance(
            layout, make_port(ports), [1e5], max_segment_length=150e-6
        )
        # Compute the DC loop resistance independently: signal series R
        # plus the parallel combination of the return paths, via a purely
        # resistive solve.
        from repro.circuit.ac import ac_impedance
        from repro.circuit.netlist import Circuit
        from repro.extraction.resistance import segment_resistance
        from repro.geometry.layout import quantize_point

        circuit = Circuit("dc")
        nodes = {}

        def node(p):
            key = quantize_point(p)
            return nodes.setdefault(key, f"n{len(nodes)}")

        layer_map = {l.name: l for l in layout.layers}
        for k, seg in enumerate(layout.segments):
            a, b = seg.endpoints()
            circuit.add_resistor(
                f"r{k}", node(a), node(b),
                segment_resistance(seg, layer_map[seg.layer]),
            )
        lay = layout.layer(ports["driver"].layer)
        p_sig = node((ports["driver"].x, ports["driver"].y, lay.z_center))
        p_ref = node((ports["gnd_driver"].x, ports["gnd_driver"].y, lay.z_center))
        s_sig = node((ports["receiver"].x, ports["receiver"].y, lay.z_center))
        s_ref = node((ports["gnd_receiver"].x, ports["gnd_receiver"].y, lay.z_center))
        circuit.add_resistor("short", s_sig, s_ref, 1e-6)
        z_dc = ac_impedance(circuit, [0.0], (p_sig, p_ref), gmin=1e-12)
        assert res.resistance[0] == pytest.approx(float(z_dc[0].real), rel=0.01)

    def test_dc_entry_inductance_is_nan(self, signal_grid_structure):
        layout, ports = signal_grid_structure
        res = extract_loop_impedance(
            layout, make_port(ports), [0.0, 1e9],
            max_segment_length=150e-6,
        )
        assert np.isnan(res.inductance[0])
        assert np.isfinite(res.inductance[1])


class TestOptions:
    def test_explicit_filament_grid(self, signal_grid_structure):
        layout, ports = signal_grid_structure
        res = extract_loop_impedance(
            layout, make_port(ports), [1e9], filaments=FilamentGrid(2, 1),
            max_segment_length=150e-6,
        )
        import math

        expected = 2 * sum(  # 2 width filaments per split piece
            max(1, math.ceil(s.length / 150e-6))
            for s in layout.segments if s.direction.value != "z"
        )
        assert res.num_filaments == expected

    def test_interpolated_at(self, extraction):
        freqs = extraction.frequencies
        mid = np.sqrt(freqs[0] * freqs[1])
        z = extraction.at(mid)
        assert min(extraction.resistance[0], extraction.resistance[1]) <= \
            z.real <= max(extraction.resistance[0], extraction.resistance[1])

    def test_empty_frequencies_rejected(self, signal_grid_structure):
        layout, ports = signal_grid_structure
        with pytest.raises(ValueError):
            extract_loop_impedance(layout, make_port(ports), [])

    def test_at_on_descending_grid(self):
        # Regression: a high-to-low sweep hands np.interp a descending
        # abscissa, for which it silently returns garbage.  at() must
        # sort internally.
        freqs = np.array([1e10, 1e9, 1e8])
        z = np.array([3.0 + 30.0j, 2.0 + 20.0j, 1.0 + 10.0j])
        res = LoopExtractionResult(
            frequencies=freqs, impedance=z, num_filaments=0
        )
        for f, zv in zip(freqs, z):
            assert res.at(f) == zv
        mid = res.at(5.5e8)  # halfway between the 1e8 and 1e9 points
        assert mid == pytest.approx(1.5 + 15.0j)

    def test_at_on_unsorted_grid(self):
        freqs = np.array([1e9, 1e7, 1e10, 1e8])
        z = np.array([3.0 + 3j, 1.0 + 1j, 4.0 + 4j, 2.0 + 2j])
        res = LoopExtractionResult(
            frequencies=freqs, impedance=z, num_filaments=0
        )
        for f, zv in zip(freqs, z):
            assert res.at(f) == zv

    def test_at_returns_exact_stored_values_at_grid_points(self, extraction):
        # Exactly at a grid frequency there must be no interpolation
        # round-off: the stored value comes back bit-for-bit.
        for f, zv in zip(extraction.frequencies, extraction.impedance):
            assert extraction.at(float(f)) == complex(zv)

    def test_shields_reduce_loop_inductance(self):
        base_layout, base_ports = build_shielded_line(
            length=400e-6, with_shields=False, outer_pitch=20e-6,
        )
        shield_layout, shield_ports = build_shielded_line(
            length=400e-6, with_shields=True, shield_spacing=2e-6,
            outer_pitch=20e-6,
        )
        z_base = extract_loop_impedance(
            base_layout, make_port(base_ports), [2e9],
            max_segment_length=200e-6,
        )
        z_shield = extract_loop_impedance(
            shield_layout, make_port(shield_ports), [2e9],
            max_segment_length=200e-6,
        )
        assert z_shield.inductance[0] < z_base.inductance[0]
