"""Two-frequency ladder fit (Figure 3d)."""

import numpy as np
import pytest

from repro.circuit.ac import ac_impedance
from repro.circuit.netlist import GROUND, Circuit
from repro.loop.ladder import LadderModel, fit_ladder


@pytest.fixture
def ladder():
    return LadderModel(r0=10.0, l0=0.3e-9, r1=5.0, l1=0.1e-9)


class TestLadderModel:
    def test_low_frequency_asymptotes(self, ladder):
        f = 1e3
        assert ladder.resistance([f])[0] == pytest.approx(10.0, rel=1e-4)
        assert ladder.inductance([f])[0] == pytest.approx(0.4e-9, rel=1e-4)

    def test_high_frequency_asymptotes(self, ladder):
        f = 1e13
        assert ladder.resistance([f])[0] == pytest.approx(15.0, rel=1e-4)
        assert ladder.inductance([f])[0] == pytest.approx(0.3e-9, rel=1e-4)

    def test_monotone_transition(self, ladder):
        freqs = np.logspace(6, 12, 30)
        r = ladder.resistance(freqs)
        l = ladder.inductance(freqs)
        assert np.all(np.diff(r) >= -1e-12)
        assert np.all(np.diff(l) <= 1e-20)

    def test_dc_inductance_defined(self, ladder):
        assert ladder.inductance([0.0])[0] == pytest.approx(0.4e-9)

    def test_rejects_nonpositive_params(self):
        with pytest.raises(ValueError):
            LadderModel(r0=-1.0, l0=1e-9, r1=1.0, l1=1e-9)

    def test_circuit_realization_matches_formula(self, ladder):
        circuit = Circuit("lad")
        ladder.add_to_circuit(circuit, "p", GROUND)
        freqs = np.logspace(7, 11, 9)
        z_circuit = ac_impedance(circuit, freqs, ("p", GROUND), gmin=1e-12)
        z_formula = ladder.impedance(freqs)
        assert np.allclose(z_circuit, z_formula, rtol=1e-6)


class TestFit:
    def test_fit_recovers_known_ladder(self, ladder):
        f1, f2 = 1e7, 2e11
        z1 = complex(ladder.impedance([f1])[0])
        z2 = complex(ladder.impedance([f2])[0])
        fitted = fit_ladder(f1, z1, f2, z2)
        assert fitted.r0 == pytest.approx(ladder.r0, rel=0.02)
        assert fitted.l0 == pytest.approx(ladder.l0, rel=0.02)
        assert fitted.r1 == pytest.approx(ladder.r1, rel=0.05)
        assert fitted.l1 == pytest.approx(ladder.l1, rel=0.05)

    def test_fit_interpolates_samples_exactly(self, ladder):
        f1, f2 = 1e9, 5e10
        z1 = complex(ladder.impedance([f1])[0])
        z2 = complex(ladder.impedance([f2])[0])
        fitted = fit_ladder(f1, z1, f2, z2)
        z1_fit = fitted.impedance([f1])[0]
        z2_fit = fitted.impedance([f2])[0]
        assert abs(z1_fit - z1) / abs(z1) < 1e-6
        assert abs(z2_fit - z2) / abs(z2) < 1e-6

    def test_fit_from_real_extraction(self, signal_grid_structure):
        from repro.loop.extractor import LoopPort, extract_loop_impedance

        layout, ports = signal_grid_structure
        port = LoopPort(
            signal=ports["driver"],
            reference=ports["gnd_driver"],
            short_signal=ports["receiver"],
            short_reference=ports["gnd_receiver"],
        )
        freqs = np.logspace(7, 11, 9)
        res = extract_loop_impedance(layout, port, freqs,
                                     max_segment_length=150e-6)
        fitted = fit_ladder(
            float(freqs[0]), complex(res.impedance[0]),
            float(freqs[-1]), complex(res.impedance[-1]),
        )
        # Ladder should track the extraction at intermediate points.
        mid = len(freqs) // 2
        z_mid = fitted.impedance([freqs[mid]])[0]
        assert abs(z_mid - res.impedance[mid]) / abs(res.impedance[mid]) < 0.1

    def test_fit_rejects_wrong_trends(self):
        with pytest.raises(ValueError):
            # R falling with frequency is unphysical for this model.
            fit_ladder(1e8, complex(10, 1), 1e10, complex(5, 50))

    def test_fit_rejects_bad_order(self):
        with pytest.raises(ValueError):
            fit_ladder(1e10, complex(1, 1), 1e8, complex(2, 2))

    def test_unrefined_fit_uses_asymptotes(self, ladder):
        f1, f2 = 1e6, 1e12
        z1 = complex(ladder.impedance([f1])[0])
        z2 = complex(ladder.impedance([f2])[0])
        fitted = fit_ladder(f1, z1, f2, z2, refine=False)
        assert fitted.r0 == pytest.approx(z1.real, rel=1e-9)


class TestFlatImpedanceClamp:
    """Regression: a frequency-flat extraction (no skin/proximity effect)
    used to crash the fit -- the asymptotic seed R1 = dR, L1 = dL went to
    exactly zero and LadderModel rejected it.  Flat samples now clamp the
    shunt branch to a tiny positive floor; clearly inverted trends still
    raise."""

    def test_perfectly_flat_samples_fit(self):
        r, l = 8.0, 0.25e-9
        f1, f2 = 1e8, 1e10
        z1 = complex(r, 2 * np.pi * f1 * l)
        z2 = complex(r, 2 * np.pi * f2 * l)
        model = fit_ladder(f1, z1, f2, z2)
        assert model.r0 > 0 and model.l0 > 0
        assert model.r1 > 0 and model.l1 > 0
        assert model.resistance([f1])[0] == pytest.approx(r, rel=1e-6)
        assert model.inductance([f2])[0] == pytest.approx(l, rel=1e-6)

    def test_flat_resistance_only(self):
        # R flat, L falling: only the R1 branch needs the clamp.
        f1, f2 = 1e8, 1e10
        z1 = complex(5.0, 2 * np.pi * f1 * 0.30e-9)
        z2 = complex(5.0, 2 * np.pi * f2 * 0.28e-9)
        model = fit_ladder(f1, z1, f2, z2)
        assert model.r1 > 0
        assert model.l1 == pytest.approx(0.02e-9, rel=0.05)

    def test_unrefined_flat_samples_fit(self):
        f1, f2 = 1e8, 1e10
        z = lambda f: complex(3.0, 2 * np.pi * f * 0.1e-9)  # noqa: E731
        model = fit_ladder(f1, z(f1), f2, z(f2), refine=False)
        assert min(model.r0, model.l0, model.r1, model.l1) > 0

    def test_tiny_jitter_within_tolerance_fits(self):
        # Numerical noise just below FLAT_REL_TOL must not raise.
        from repro.loop.ladder import FLAT_REL_TOL

        r, l = 8.0, 0.25e-9
        eps = 0.5 * FLAT_REL_TOL
        f1, f2 = 1e8, 1e10
        z1 = complex(r, 2 * np.pi * f1 * l)
        z2 = complex(r * (1 - eps), 2 * np.pi * f2 * l * (1 + eps))
        model = fit_ladder(f1, z1, f2, z2)
        assert min(model.r0, model.l0, model.r1, model.l1) > 0

    def test_clearly_inverted_trend_still_raises(self):
        f1, f2 = 1e8, 1e10
        # R drops 50% with frequency: far beyond tolerance.
        z1 = complex(10.0, 2 * np.pi * f1 * 0.3e-9)
        z2 = complex(5.0, 2 * np.pi * f2 * 0.2e-9)
        with pytest.raises(ValueError, match="not fittable"):
            fit_ladder(f1, z1, f2, z2)
