"""Loop-model netlist construction (Figure 3c)."""

import numpy as np
import pytest

from repro.circuit.netlist import GROUND
from repro.circuit.transient import transient_analysis
from repro.circuit.waveforms import Ramp
from repro.loop.extractor import LoopExtractionResult
from repro.loop.ladder import LadderModel
from repro.loop.model import LoopModelSpec, build_loop_circuit


@pytest.fixture
def extraction():
    freqs = np.array([1e8, 1e9, 1e10])
    omega = 2 * np.pi * freqs
    z = 12.0 + np.array([0.0, 0.5, 4.0]) + 1j * omega * np.array(
        [0.5e-9, 0.45e-9, 0.4e-9]
    )
    return LoopExtractionResult(frequencies=freqs, impedance=z,
                                num_filaments=10)


class TestSingleFrequencyLump:
    def test_single_section_structure(self, extraction):
        circuit = build_loop_circuit(extraction, 50e-15,
                                     LoopModelSpec(frequency=1e9))
        # One R, one L, one C at the receiver.
        assert len(circuit.resistors) == 1
        assert len(circuit.inductors) == 1
        assert len(circuit.capacitors) == 1
        cap = circuit.capacitors[0]
        assert cap.n1 == "rcv"
        assert cap.n2 == GROUND

    def test_extracted_values_used(self, extraction):
        circuit = build_loop_circuit(extraction, 50e-15,
                                     LoopModelSpec(frequency=1e9))
        assert circuit.resistors[0].resistance == pytest.approx(12.5)
        assert circuit.inductors[0].inductance == pytest.approx(0.45e-9)

    def test_multi_section_splits_values(self, extraction):
        circuit = build_loop_circuit(
            extraction, 60e-15, LoopModelSpec(frequency=1e9, num_sections=3)
        )
        assert len(circuit.resistors) == 3
        assert len(circuit.capacitors) == 3
        total_r = sum(r.resistance for r in circuit.resistors)
        total_c = sum(c.capacitance for c in circuit.capacitors)
        assert total_r == pytest.approx(12.5)
        assert total_c == pytest.approx(60e-15)

    def test_ladder_option(self, extraction):
        ladder = LadderModel(r0=10.0, l0=0.4e-9, r1=4.0, l1=0.1e-9)
        circuit = build_loop_circuit(
            extraction, 50e-15, LoopModelSpec(ladder=ladder)
        )
        assert len(circuit.inductors) == 2  # L0 and L1

    def test_validation(self, extraction):
        with pytest.raises(ValueError):
            build_loop_circuit(extraction, 0.0)
        with pytest.raises(ValueError):
            LoopModelSpec(num_sections=0)
        with pytest.raises(ValueError):
            LoopModelSpec(frequency=-1e9)

    def test_simulates_as_rlc(self, extraction):
        circuit = build_loop_circuit(extraction, 50e-15,
                                     LoopModelSpec(frequency=1e9))
        circuit.add_vsource("vin", "src", GROUND, Ramp(0, 1, 0, 30e-12))
        circuit.add_resistor("rdrv", "src", "drv", 30.0)
        res = transient_analysis(circuit, 1e-9, 1e-12, record=["rcv"])
        v = res.voltage("rcv")
        assert v[-1] == pytest.approx(1.0, abs=0.02)
