"""Operator-backed (matrix-free) loop extraction vs the dense path.

The PR 9 acceptance bar: with ``assembly="hierarchical"`` the loop
sweep solves through the Krylov rung over the hierarchical operator --
no dense L is ever materialized -- and agrees with the exact dense
extraction to well below the ACA tolerance on every Section-6 variant
family.
"""

import numpy as np
import pytest

from repro.loop.extractor import extract_loop_impedance
from repro.obs import metrics as obs_metrics
from repro.resilience import inject_faults
from repro.scenarios.variants import VARIANTS, build_variant

LENGTH = 100e-6
MAX_SEGMENT_LENGTH = 200e-6
FREQS = [1e9]


@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_operator_vs_dense_agreement(variant):
    layout, port = build_variant(variant, LENGTH)
    to_dense0 = obs_metrics.counter("hierarchical.to_dense_calls").value
    fallbacks0 = obs_metrics.counter("solver.krylov_fallbacks").value
    solves0 = obs_metrics.counter("solver.krylov_solves").value
    with inject_faults():
        exact = extract_loop_impedance(
            layout, port, FREQS,
            max_segment_length=MAX_SEGMENT_LENGTH, workers=1,
        )
        operator = extract_loop_impedance(
            layout, port, FREQS,
            max_segment_length=MAX_SEGMENT_LENGTH, workers=1,
            assembly="hierarchical",
        )
    rel = np.abs(operator.impedance - exact.impedance) / np.abs(
        exact.impedance
    )
    assert np.max(rel) <= 1e-10, f"{variant}: rel err {np.max(rel):.3e}"
    # The matrix-free contract: the hierarchical L was never densified
    # and no Krylov solve fell back to the direct path.
    assert (
        obs_metrics.counter("hierarchical.to_dense_calls").value == to_dense0
    )
    assert (
        obs_metrics.counter("solver.krylov_fallbacks").value == fallbacks0
    )
    # ... and the sweep really went through the Krylov rung (the test
    # would be vacuous if hierarchical assembly fell back to dense).
    assert obs_metrics.counter("solver.krylov_solves").value > solves0
