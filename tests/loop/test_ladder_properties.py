"""Property-based tests of the ladder model and its two-point fit."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.loop.ladder import LadderModel, fit_ladder

ladder_params = st.builds(
    LadderModel,
    r0=st.floats(0.5, 100.0),
    l0=st.floats(1e-11, 5e-9),
    r1=st.floats(0.1, 50.0),
    l1=st.floats(1e-12, 1e-9),
)


class TestLadderProperties:
    @given(ladder=ladder_params)
    @settings(max_examples=50, deadline=None)
    def test_resistance_monotone_nondecreasing(self, ladder):
        freqs = np.logspace(5, 13, 40)
        r = ladder.resistance(freqs)
        assert np.all(np.diff(r) >= -1e-9 * r[0])

    @given(ladder=ladder_params)
    @settings(max_examples=50, deadline=None)
    def test_inductance_monotone_nonincreasing(self, ladder):
        freqs = np.logspace(5, 13, 40)
        l = ladder.inductance(freqs)
        assert np.all(np.diff(l) <= 1e-9 * l[0])

    @given(ladder=ladder_params)
    @settings(max_examples=50, deadline=None)
    def test_asymptotes_bound_the_curves(self, ladder):
        freqs = np.logspace(5, 13, 20)
        r = ladder.resistance(freqs)
        l = ladder.inductance(freqs)
        assert np.all(r >= ladder.r0 * (1 - 1e-9))
        assert np.all(r <= (ladder.r0 + ladder.r1) * (1 + 1e-9))
        assert np.all(l <= (ladder.l0 + ladder.l1) * (1 + 1e-9))
        assert np.all(l >= ladder.l0 * (1 - 1e-9))

    @given(ladder=ladder_params, seed=st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_two_point_fit_round_trips(self, ladder, seed):
        # Sample near the ladder's own transition corner so both points
        # carry information about all four parameters.
        f_corner = ladder.r1 / (2 * np.pi * ladder.l1)
        f1 = f_corner / 300.0
        f2 = f_corner * 300.0
        z1 = complex(ladder.impedance([f1])[0])
        z2 = complex(ladder.impedance([f2])[0])
        fitted = fit_ladder(f1, z1, f2, z2)
        # The fit must interpolate its two samples...
        for f, z in ((f1, z1), (f2, z2)):
            z_fit = fitted.impedance([f])[0]
            assert abs(z_fit - z) / abs(z) < 1e-4
        # ...and track the generator in between.
        f_mid = np.sqrt(f1 * f2)
        z_mid = ladder.impedance([f_mid])[0]
        z_fit_mid = fitted.impedance([f_mid])[0]
        assert abs(z_fit_mid - z_mid) / abs(z_mid) < 0.05
