"""The shipped examples stay runnable.

Each example is executed in-process via runpy with stdout captured;
failures here mean the public API drifted out from under the docs.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "self inductance" in out
        assert "overshoot" in out

    def test_loop_extraction(self, capsys):
        out = run_example("loop_extraction.py", capsys)
        assert "Figure 3(b)" in out
        assert "ladder fit" in out

    def test_power_grid_noise(self, capsys):
        out = run_example("power_grid_noise.py", capsys)
        assert "droop" in out

    def test_advanced_analysis(self, capsys):
        out = run_example("advanced_analysis.py", capsys)
        assert "hierarchical" in out
        assert "adaptive" in out
        assert "worst" in out
