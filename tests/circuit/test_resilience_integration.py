"""Resilience wiring inside the circuit engines: adaptive step control,
DC gmin interaction, and the ConvergenceError iteration trace."""

import numpy as np
import pytest

from repro.circuit.adaptive import adaptive_transient
from repro.circuit.dc import ConvergenceError, dc_operating_point
from repro.circuit.linalg import SingularCircuitError
from repro.circuit.netlist import GROUND, Circuit
from repro.circuit.waveforms import Ramp
from repro.resilience import (
    FaultSpec,
    InjectedFault,
    ResiliencePolicy,
    RunReport,
    activate,
    inject_faults,
)

SAFE = ResiliencePolicy(escalation="safe")
FULL = ResiliencePolicy(escalation="full")


def _rlc():
    c = Circuit("rlc")
    c.add_vsource("vin", "a", GROUND, Ramp(0.0, 1.0, 0.1e-9, 50e-12))
    c.add_resistor("r", "a", "b", 5.0)
    c.add_inductor("l", "b", "c", 1e-9)
    c.add_capacitor("c1", "c", GROUND, 0.5e-12)
    return c


class TestAdaptiveStepControl:
    def test_lte_rejections_are_counted(self):
        with inject_faults():
            res = adaptive_transient(_rlc(), 3e-9, 5e-12, reltol=1e-5,
                                     record=["c"])
        assert res.num_rejected > 0

    def test_injected_fault_is_retried_and_result_stays_accurate(self):
        with inject_faults():
            clean = adaptive_transient(_rlc(), 3e-9, 1e-12, record=["c"],
                                       policy=SAFE)
        with inject_faults(FaultSpec("adaptive.step", "raise", after=5)):
            faulted = adaptive_transient(_rlc(), 3e-9, 1e-12, record=["c"],
                                         policy=SAFE)
        assert faulted.report.retries
        resampled = faulted.resampled(clean.times)
        err = np.max(np.abs(resampled.voltage("c") - clean.voltage("c")))
        assert err < 1e-6  # a retried step must not change the answer

    def test_exhausted_retries_fall_back_to_step_halving(self):
        no_retry = ResiliencePolicy(escalation="safe", max_retries=0,
                                    max_step_halvings=4)
        with inject_faults(FaultSpec("adaptive.step", "raise", after=5)):
            res = adaptive_transient(_rlc(), 3e-9, 1e-12, record=["c"],
                                     policy=no_retry)
        halvings = res.report.by_kind("step-halving")
        assert halvings
        assert res.num_rejected >= 1
        assert res.times[-1] == pytest.approx(3e-9, rel=1e-9)

    def test_unrecoverable_fault_propagates(self):
        brittle = ResiliencePolicy(escalation="safe", max_retries=0,
                                   max_step_halvings=0)
        with inject_faults(
            FaultSpec("adaptive.step", "raise", after=5, max_hits=None)
        ):
            with pytest.raises(InjectedFault):
                adaptive_transient(_rlc(), 3e-9, 1e-12, policy=brittle)


class _Oscillator:
    """Discontinuous device Newton can never balance: the residual flips
    sign forever, so DC convergence must fail deterministically."""

    name = "osc"
    nodes = ("a",)

    def evaluate(self, v):
        i = np.array([1.0 if float(v[0]) >= 0.0 else -1.0])
        return i, np.array([[0.0]])


def _nonconvergent_circuit():
    c = Circuit("osc")
    c.add_resistor("r", "a", GROUND, 1.0)
    c.add_device(_Oscillator())
    return c


class TestConvergenceErrorTrace:
    def test_str_carries_residual_history_and_last_step(self):
        err = ConvergenceError(
            "no convergence", residual_history=[1.0, 0.5, 0.25],
            last_step=0.125,
        )
        text = str(err)
        assert "3 iterations" in text
        assert "residuals" in text
        assert "2.500e-01" in text
        assert "last step 1.250e-01" in text

    def test_long_histories_are_elided(self):
        err = ConvergenceError("x", residual_history=list(range(1, 20)))
        text = str(err)
        assert "19 iterations" in text
        assert "..." in text

    def test_plain_message_without_history(self):
        assert str(ConvergenceError("flat")) == "flat"

    def test_failed_dc_populates_the_trace(self):
        with inject_faults():
            with pytest.raises(ConvergenceError) as err:
                dc_operating_point(_nonconvergent_circuit(), max_iter=10,
                                   policy=SAFE)
        exc = err.value
        assert len(exc.residual_history) >= 10
        assert exc.last_step is not None
        assert "iterations" in str(exc)

    def test_full_policy_records_source_stepping_attempts(self):
        report = RunReport()
        with inject_faults():
            with activate(report):
                with pytest.raises(ConvergenceError):
                    dc_operating_point(_nonconvergent_circuit(), max_iter=10,
                                       policy=FULL)
        fractions = report.by_kind("source-stepping")
        assert len(fractions) == len(FULL.source_steps)


class TestDCGminInteraction:
    def _floating_cap_circuit(self):
        c = Circuit("float")
        c.add_vsource("v", "a", GROUND, 1.0)
        c.add_resistor("r", "a", "b", 10.0)
        c.add_capacitor("c1", "b", "c", 1e-15)  # node "c" floats at DC
        return c

    def test_explicit_gmin_keeps_the_matrix_solvable(self):
        with inject_faults():
            x = dc_operating_point(self._floating_cap_circuit(), policy=SAFE)
        assert np.all(np.isfinite(x))

    def test_safe_policy_without_gmin_raises(self):
        with inject_faults():
            with pytest.raises(SingularCircuitError):
                dc_operating_point(self._floating_cap_circuit(), gmin=0.0,
                                   policy=SAFE)

    def test_gmin_rung_rescues_what_add_gmin_would_have_fixed(self):
        # The escalation chain's gmin rung is the implicit counterpart of
        # the explicit add_gmin() leak: with gmin=0 and the full policy,
        # the solve recovers and matches the explicit-gmin answer.
        circuit = self._floating_cap_circuit()
        with inject_faults():
            explicit = dc_operating_point(circuit, gmin=1e-12, policy=SAFE)
            report = RunReport()
            with activate(report):
                rescued = dc_operating_point(circuit, gmin=0.0, policy=FULL)
        assert report.solve_reports
        assert report.solve_reports[0].winner in ("gmin", "lstsq")
        assert np.allclose(rescued[:2], explicit[:2], atol=1e-6)
