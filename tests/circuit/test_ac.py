"""AC analysis against closed-form impedances and transfer functions."""

import numpy as np
import pytest

from repro.circuit.ac import ac_analysis, ac_impedance
from repro.circuit.netlist import GROUND, Circuit


class TestImpedance:
    def test_resistor(self):
        c = Circuit("t")
        c.add_resistor("r", "p", GROUND, 42.0)
        z = ac_impedance(c, [1e6, 1e9], ("p", GROUND))
        assert np.allclose(z, 42.0)

    def test_series_rl(self):
        c = Circuit("t")
        c.add_resistor("r", "p", "m", 10.0)
        c.add_inductor("l", "m", GROUND, 2e-9)
        freqs = np.array([1e8, 1e9, 5e9])
        z = ac_impedance(c, freqs, ("p", GROUND))
        expected = 10.0 + 1j * 2 * np.pi * freqs * 2e-9
        assert np.allclose(z, expected, rtol=1e-9)

    def test_capacitor(self):
        c = Circuit("t")
        c.add_capacitor("c1", "p", GROUND, 1e-12)
        f = 1e9
        z = ac_impedance(c, [f], ("p", GROUND), gmin=0.0)
        expected = 1.0 / (1j * 2 * np.pi * f * 1e-12)
        assert z[0] == pytest.approx(expected, rel=1e-9)

    def test_series_rlc_resonance(self):
        c = Circuit("t")
        c.add_resistor("r", "p", "a", 7.0)
        c.add_inductor("l", "a", "b", 1e-9)
        c.add_capacitor("c1", "b", GROUND, 1e-12)
        f0 = 1.0 / (2 * np.pi * np.sqrt(1e-9 * 1e-12))
        z = ac_impedance(c, [f0], ("p", GROUND))
        assert z[0].real == pytest.approx(7.0, rel=1e-6)
        assert abs(z[0].imag) < 1e-3

    def test_parallel_inductors_share_current(self):
        c = Circuit("t")
        c.add_resistor("r1", "p", "a", 1.0)
        c.add_inductor("l1", "a", GROUND, 2e-9)
        c.add_resistor("r2", "p", "b", 1.0)
        c.add_inductor("l2", "b", GROUND, 2e-9)
        f = 1e9
        z = ac_impedance(c, [f], ("p", GROUND))
        expected = 0.5 * (1.0 + 1j * 2 * np.pi * f * 2e-9)
        assert z[0] == pytest.approx(expected, rel=1e-9)

    def test_mutual_coupling_aiding(self):
        # Two series-aiding coupled inductors: L_eff = L1 + L2 + 2M.
        c = Circuit("t")
        c.add_inductor("l1", "p", "m", 1e-9)
        c.add_inductor("l2", "m", GROUND, 1e-9)
        c.add_mutual("m12", "l1", "l2", 0.5e-9)
        f = 1e9
        z = ac_impedance(c, [f], ("p", GROUND), gmin=1e-12)
        l_eff = z[0].imag / (2 * np.pi * f)
        assert l_eff == pytest.approx(3e-9, rel=1e-6)

    def test_k_set_matches_l_set(self):
        l_matrix = np.array([[2e-9, 0.6e-9], [0.6e-9, 1.5e-9]])
        freqs = [5e8, 2e9, 1e10]

        def build(kind):
            c = Circuit(kind)
            c.add_resistor("r1", "p", "a", 1.0)
            c.add_resistor("r2", "p", "b", 1.0)
            if kind == "L":
                c.add_inductor_set("s", [("a", GROUND), ("b", GROUND)], l_matrix)
            else:
                c.add_k_set("s", [("a", GROUND), ("b", GROUND)],
                            np.linalg.inv(l_matrix))
            return c

        z_l = ac_impedance(build("L"), freqs, ("p", GROUND))
        z_k = ac_impedance(build("K"), freqs, ("p", GROUND))
        assert np.allclose(z_l, z_k, rtol=1e-9)


class TestACAnalysis:
    def test_rc_lowpass_transfer(self):
        c = Circuit("t")
        c.add_vsource("vin", "in", GROUND, 0.0)
        c.add_resistor("r", "in", "out", 1000.0)
        c.add_capacitor("c1", "out", GROUND, 1e-12)
        f3db = 1.0 / (2 * np.pi * 1000.0 * 1e-12)
        res = ac_analysis(c, [f3db / 100, f3db, f3db * 100], {"vin": 1.0})
        h = res.voltage("out")
        assert abs(h[0]) == pytest.approx(1.0, rel=1e-3)
        assert abs(h[1]) == pytest.approx(1 / np.sqrt(2), rel=1e-3)
        assert abs(h[2]) < 0.02

    def test_off_sources_are_zero(self):
        c = Circuit("t")
        c.add_vsource("v1", "a", GROUND, 5.0)  # DC value ignored in AC
        c.add_vsource("v2", "b", GROUND, 0.0)
        c.add_resistor("r1", "a", "c", 1.0)
        c.add_resistor("r2", "b", "c", 1.0)
        c.add_resistor("r3", "c", GROUND, 1.0)
        res = ac_analysis(c, [1e9], {"v2": 1.0})
        # Only v2 active: v1 shorted.
        assert abs(res.voltage("a")[0]) < 1e-12
        assert abs(res.voltage("b")[0] - 1.0) < 1e-12

    def test_unknown_stimulus_rejected(self):
        c = Circuit("t")
        c.add_resistor("r", "a", GROUND, 1.0)
        with pytest.raises(KeyError):
            ac_analysis(c, [1e9], {"nope": 1.0})

    def test_nonlinear_rejected(self):
        from repro.circuit.devices import CMOSInverter

        c = Circuit("t")
        c.add_vsource("vdd", "vdd", GROUND, 1.2)
        c.add_device(CMOSInverter("u", "vdd", "out", "vdd", GROUND))
        with pytest.raises(ValueError):
            ac_analysis(c, [1e9], {"vdd": 1.0})

    def test_branch_current_readout(self):
        c = Circuit("t")
        c.add_vsource("vin", "a", GROUND, 0.0)
        c.add_resistor("r", "a", GROUND, 2.0)
        res = ac_analysis(c, [1e9], {"vin": 1.0})
        # Source branch current = -v/r (flows out of + internally).
        assert res.branch_current("vin")[0] == pytest.approx(-0.5, rel=1e-9)
