"""DC operating point."""

import numpy as np
import pytest

from repro.circuit.dc import ConvergenceError, dc_operating_point
from repro.circuit.devices import CMOSInverter
from repro.circuit.linalg import SingularCircuitError
from repro.circuit.mna import MNASystem
from repro.circuit.netlist import GROUND, Circuit


class TestLinearDC:
    def test_resistor_divider(self):
        c = Circuit("t")
        c.add_vsource("v", "a", GROUND, 10.0)
        c.add_resistor("r1", "a", "b", 6.0)
        c.add_resistor("r2", "b", GROUND, 4.0)
        x = dc_operating_point(c)
        assert x[c.node_index("b")] == pytest.approx(4.0)

    def test_inductors_are_shorts(self):
        c = Circuit("t")
        c.add_vsource("v", "a", GROUND, 2.0)
        c.add_resistor("r1", "a", "b", 1.0)
        c.add_inductor("l", "b", "c", 1e-9)
        c.add_resistor("r2", "c", GROUND, 1.0)
        x = dc_operating_point(c)
        system = MNASystem(c)
        assert x[system.node_index("b")] == pytest.approx(
            x[system.node_index("c")]
        )
        assert x[system.branch_index("l")] == pytest.approx(1.0)

    def test_capacitors_are_open(self):
        c = Circuit("t")
        c.add_vsource("v", "a", GROUND, 2.0)
        c.add_resistor("r1", "a", "b", 1.0)
        c.add_capacitor("c1", "b", GROUND, 1e-12)
        x = dc_operating_point(c)
        assert x[c.node_index("b")] == pytest.approx(2.0)

    def test_current_source(self):
        c = Circuit("t")
        c.add_isource("i", GROUND, "a", 1e-3)  # inject 1 mA into a
        c.add_resistor("r", "a", GROUND, 1000.0)
        x = dc_operating_point(c)
        assert x[c.node_index("a")] == pytest.approx(1.0)

    def test_floating_node_handled_by_gmin(self):
        c = Circuit("t")
        c.add_vsource("v", "a", GROUND, 1.0)
        c.add_capacitor("c1", "a", "b", 1e-12)
        c.add_capacitor("c2", "b", GROUND, 1e-12)
        x = dc_operating_point(c)  # b floats at DC; gmin pins it
        assert np.isfinite(x).all()

    def test_sources_evaluated_at_t(self):
        from repro.circuit.waveforms import Ramp

        c = Circuit("t")
        c.add_vsource("v", "a", GROUND, Ramp(0, 2, 0, 1e-9))
        c.add_resistor("r", "a", GROUND, 1.0)
        x = dc_operating_point(c, t=0.5e-9)
        assert x[c.node_index("a")] == pytest.approx(1.0)


class TestNonlinearDC:
    def test_inverter_vtc_endpoints(self):
        for vin, expect_high in ((0.0, True), (1.2, False)):
            c = Circuit("t")
            c.add_vsource("vdd", "vdd", GROUND, 1.2)
            c.add_vsource("vin", "in", GROUND, vin)
            c.add_device(CMOSInverter("u", "in", "out", "vdd", GROUND))
            c.add_resistor("rl", "out", GROUND, 1e9)
            x = dc_operating_point(c)
            v_out = x[c.node_index("out")]
            if expect_high:
                assert v_out > 1.1
            else:
                assert v_out < 0.1

    def test_inverter_switching_region_monotone(self):
        outs = []
        for vin in (0.3, 0.5, 0.6, 0.7, 0.9):
            c = Circuit("t")
            c.add_vsource("vdd", "vdd", GROUND, 1.2)
            c.add_vsource("vin", "in", GROUND, vin)
            c.add_device(CMOSInverter("u", "in", "out", "vdd", GROUND))
            c.add_resistor("rl", "out", GROUND, 1e9)
            x = dc_operating_point(c)
            outs.append(x[c.node_index("out")])
        assert all(a >= b - 1e-9 for a, b in zip(outs, outs[1:]))

    def test_two_stage_chain(self):
        c = Circuit("t")
        c.add_vsource("vdd", "vdd", GROUND, 1.2)
        c.add_vsource("vin", "in", GROUND, 0.0)
        c.add_device(CMOSInverter("u1", "in", "mid", "vdd", GROUND))
        c.add_device(CMOSInverter("u2", "mid", "out", "vdd", GROUND))
        c.add_resistor("rl", "out", GROUND, 1e9)
        x = dc_operating_point(c)
        assert x[c.node_index("mid")] > 1.1
        assert x[c.node_index("out")] < 0.1
