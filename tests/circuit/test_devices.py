"""Square-law CMOS devices: currents, Jacobians, switching."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.devices import CMOSInverter, MOSParameters, _nmos_ids


class TestSquareLaw:
    def test_cutoff(self):
        p = MOSParameters(vt=0.45, beta=1e-3, lam=0.0, gmin=0.0)
        ids, dgs, dds = _nmos_ids(0.3, 0.5, p)
        assert ids == 0.0

    def test_triode_value(self):
        p = MOSParameters(vt=0.4, beta=1e-3, lam=0.0, gmin=0.0)
        ids, _, _ = _nmos_ids(1.0, 0.2, p)
        assert ids == pytest.approx(1e-3 * (0.6 * 0.2 - 0.02))

    def test_saturation_value(self):
        p = MOSParameters(vt=0.4, beta=1e-3, lam=0.0, gmin=0.0)
        ids, _, _ = _nmos_ids(1.0, 1.0, p)
        assert ids == pytest.approx(0.5e-3 * 0.36)

    def test_continuity_at_saturation_boundary(self):
        p = MOSParameters(vt=0.4, beta=1e-3, lam=0.05, gmin=0.0)
        vov = 0.3
        below, _, _ = _nmos_ids(0.7, vov - 1e-9, p)
        above, _, _ = _nmos_ids(0.7, vov + 1e-9, p)
        assert below == pytest.approx(above, rel=1e-6)

    @given(
        vgs=st.floats(0.0, 1.5),
        vds=st.floats(0.0, 1.5),
    )
    @settings(max_examples=100)
    def test_derivatives_match_finite_difference(self, vgs, vds):
        p = MOSParameters(vt=0.45, beta=2e-3, lam=0.05, gmin=1e-9)
        h = 1e-7
        ids, dgs, dds = _nmos_ids(vgs, vds, p)
        num_dgs = (_nmos_ids(vgs + h, vds, p)[0] -
                   _nmos_ids(vgs - h, vds, p)[0]) / (2 * h)
        num_dds = (_nmos_ids(vgs, vds + h, p)[0] -
                   _nmos_ids(vgs, vds - h, p)[0]) / (2 * h)
        assert dgs == pytest.approx(num_dgs, abs=1e-6)
        assert dds == pytest.approx(num_dds, abs=1e-6)


class TestInverter:
    def test_current_conservation(self):
        inv = CMOSInverter("u", "g", "o", "vdd", "vss")
        for v in ([0.6, 0.5, 1.2, 0.0], [0.2, 1.1, 1.2, 0.0],
                  [1.0, 0.1, 1.2, 0.0]):
            i, _ = inv.evaluate(np.array(v))
            assert sum(i) == pytest.approx(0.0, abs=1e-15)

    def test_gate_draws_no_current(self):
        inv = CMOSInverter("u", "g", "o", "vdd", "vss")
        i, _ = inv.evaluate(np.array([0.6, 0.5, 1.2, 0.0]))
        assert i[0] == 0.0

    def test_pulldown_when_input_high(self):
        inv = CMOSInverter("u", "g", "o", "vdd", "vss")
        i, _ = inv.evaluate(np.array([1.2, 0.6, 1.2, 0.0]))
        assert i[1] > 0.0  # current flows out of the output node (discharge)

    def test_pullup_when_input_low(self):
        inv = CMOSInverter("u", "g", "o", "vdd", "vss")
        i, _ = inv.evaluate(np.array([0.0, 0.6, 1.2, 0.0]))
        assert i[1] < 0.0  # current flows into the output node (charge)

    def test_strength_scales_current(self):
        weak = CMOSInverter("w", "g", "o", "vdd", "vss", strength=1.0)
        strong = CMOSInverter("s", "g", "o", "vdd", "vss", strength=4.0)
        vi = np.array([1.2, 0.6, 1.2, 0.0])
        iw, _ = weak.evaluate(vi)
        istr, _ = strong.evaluate(vi)
        assert istr[1] == pytest.approx(4.0 * iw[1], rel=1e-6)

    @given(
        v_g=st.floats(0.0, 1.2),
        v_o=st.floats(0.0, 1.2),
    )
    @settings(max_examples=60)
    def test_jacobian_matches_finite_difference(self, v_g, v_o):
        inv = CMOSInverter("u", "g", "o", "vdd", "vss")
        v = np.array([v_g, v_o, 1.2, 0.0])
        i0, jac = inv.evaluate(v)
        h = 1e-7
        for col in range(4):
            vp = v.copy()
            vp[col] += h
            vm = v.copy()
            vm[col] -= h
            num = (inv.evaluate(vp)[0] - inv.evaluate(vm)[0]) / (2 * h)
            assert np.allclose(jac[:, col], num, atol=1e-5)

    def test_reverse_bias_handled(self):
        # Output above vdd: PMOS conducts backwards without blowing up.
        inv = CMOSInverter("u", "g", "o", "vdd", "vss")
        i, jac = inv.evaluate(np.array([0.0, 1.5, 1.2, 0.0]))
        assert np.all(np.isfinite(i))
        assert np.all(np.isfinite(jac))
        assert i[1] > 0.0  # current flows back into the rail
