"""State-space macromodel element: embedding semantics."""

import numpy as np
import pytest

from repro.circuit.elements import StateSpaceElement
from repro.circuit.ac import ac_impedance
from repro.circuit.mna import MNASystem
from repro.circuit.netlist import GROUND, Circuit
from repro.circuit.transient import transient_analysis
from repro.circuit.waveforms import Ramp


def rc_macromodel():
    """Exact 2-state macromodel of R=100 in series with C=1pF to ground.

    MNA of the subcircuit with port-injection input: states (v_port,
    v_internal); G = [[1/R, -1/R], [-1/R, 1/R]]; C = diag(0, 1 pF);
    b = [1, 0].
    """
    g = 1.0 / 100.0
    g_red = np.array([[g, -g], [-g, g]])
    c_red = np.array([[0.0, 0.0], [0.0, 1e-12]])
    b_red = np.array([[1.0], [0.0]])
    return g_red, c_red, b_red


class TestValidation:
    def test_shape_checks(self):
        with pytest.raises(ValueError):
            StateSpaceElement("m", (("a", "0"),), np.eye(2), np.eye(3),
                              np.ones((2, 1)))
        with pytest.raises(ValueError):
            StateSpaceElement("m", (("a", "0"),), np.eye(2), np.eye(2),
                              np.ones((2, 2)))

    def test_counts(self):
        g_red, c_red, b_red = rc_macromodel()
        e = StateSpaceElement("m", (("a", "0"),), g_red, c_red, b_red)
        assert e.num_states == 2
        assert e.num_ports == 1


class TestEmbeddedBehaviour:
    def test_ac_impedance_matches_native_rc(self):
        g_red, c_red, b_red = rc_macromodel()
        macro = Circuit("macro")
        macro.add_macromodel("m", [("p", GROUND)], g_red, c_red, b_red)

        native = Circuit("native")
        native.add_resistor("r", "p", "x", 100.0)
        native.add_capacitor("c", "x", GROUND, 1e-12)

        freqs = [1e7, 1e9, 1e10]
        z_m = ac_impedance(macro, freqs, ("p", GROUND), gmin=1e-12)
        z_n = ac_impedance(native, freqs, ("p", GROUND), gmin=1e-12)
        assert np.allclose(z_m, z_n, rtol=1e-6)

    def test_transient_matches_native_rc(self):
        g_red, c_red, b_red = rc_macromodel()

        def driven(circuit):
            circuit.add_vsource("vin", "in", GROUND, Ramp(0, 1, 0, 0.1e-9))
            circuit.add_resistor("rd", "in", "p", 50.0)
            return circuit

        macro = driven(Circuit("macro"))
        macro.add_macromodel("m", [("p", GROUND)], g_red, c_red, b_red)
        native = driven(Circuit("native"))
        native.add_resistor("r", "p", "x", 100.0)
        native.add_capacitor("c", "x", GROUND, 1e-12)

        res_m = transient_analysis(macro, 2e-9, 2e-12, record=["p"])
        res_n = transient_analysis(native, 2e-9, 2e-12, record=["p"])
        assert np.allclose(res_m.voltage("p"), res_n.voltage("p"), atol=1e-6)

    def test_state_branches_recorded(self):
        g_red, c_red, b_red = rc_macromodel()
        c = Circuit("macro")
        c.add_vsource("vin", "in", GROUND, Ramp(0, 1, 0, 0.1e-9))
        c.add_resistor("rd", "in", "p", 50.0)
        c.add_macromodel("m", [("p", GROUND)], g_red, c_red, b_red)
        res = transient_analysis(c, 1e-9, 2e-12)
        # Internal cap state should track toward 1 V.
        z1 = res.current("m.z1")
        assert z1[-1] == pytest.approx(1.0, abs=0.05)

    def test_stats_count_macromodels(self):
        g_red, c_red, b_red = rc_macromodel()
        c = Circuit("t")
        c.add_macromodel("m", [("p", GROUND)], g_red, c_red, b_red)
        assert c.stats()["macromodels"] == 1
        assert MNASystem(c).m_ss == 3  # 2 states + 1 port current
