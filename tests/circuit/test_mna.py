"""MNA stamping: matrices of known small circuits."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.circuit.mna import MNASystem
from repro.circuit.netlist import GROUND, Circuit


class TestDimensions:
    def test_unknown_ordering(self):
        c = Circuit("t")
        c.add_resistor("r", "a", "b", 1.0)
        c.add_inductor("l", "b", GROUND, 1e-9)
        c.add_vsource("v", "a", GROUND, 1.0)
        system = MNASystem(c)
        assert system.n == 2
        assert system.m_l == 1
        assert system.p == 1
        assert system.size == 4
        assert system.branch_index("l") == 2
        assert system.branch_index("v") == 3

    def test_set_branch_indexing(self):
        c = Circuit("t")
        c.add_inductor_set("ls", [("a", "b"), ("b", GROUND)],
                           np.array([[1e-9, 0.0], [0.0, 1e-9]]))
        system = MNASystem(c)
        assert system.branch_index("ls[0]") == 2
        assert system.branch_index("ls[1]") == 3

    def test_unknown_branch_raises(self):
        c = Circuit("t")
        c.add_resistor("r", "a", GROUND, 1.0)
        with pytest.raises(KeyError):
            MNASystem(c).branch_index("nope")


class TestStamps:
    def test_resistor_divider_matrix(self):
        c = Circuit("t")
        c.add_resistor("r1", "a", "b", 2.0)
        c.add_resistor("r2", "b", GROUND, 2.0)
        g, _ = MNASystem(c).build_matrices(fmt="dense")
        expected = np.array([[0.5, -0.5], [-0.5, 1.0]])
        assert np.allclose(g, expected)

    def test_capacitor_stamp(self):
        c = Circuit("t")
        c.add_capacitor("c1", "a", GROUND, 3e-12)
        _, cap = MNASystem(c).build_matrices(fmt="dense")
        assert cap[0, 0] == pytest.approx(3e-12)

    def test_inductor_skew_structure(self):
        c = Circuit("t")
        c.add_inductor("l", "a", GROUND, 2e-9)
        g, cap = MNASystem(c).build_matrices(fmt="dense")
        # KCL row gets +i; branch row gets -v; C gets L.
        assert g[0, 1] == 1.0
        assert g[1, 0] == -1.0
        assert cap[1, 1] == pytest.approx(2e-9)
        # Skew part means G + G^T is PSD (zero here).
        assert np.allclose(g + g.T, 0.0)

    def test_mutual_inductor_stamp(self):
        c = Circuit("t")
        c.add_inductor("l1", "a", GROUND, 1e-9)
        c.add_inductor("l2", "b", GROUND, 4e-9)
        c.add_mutual("m", "l1", "l2", 1e-9)
        _, cap = MNASystem(c).build_matrices(fmt="dense")
        assert cap[2, 3] == pytest.approx(1e-9)
        assert cap[3, 2] == pytest.approx(1e-9)

    def test_dense_and_sparse_agree(self):
        c = Circuit("t")
        c.add_resistor("r", "a", "b", 5.0)
        c.add_capacitor("c1", "b", GROUND, 1e-12)
        c.add_inductor_set("ls", [("a", GROUND), ("b", GROUND)],
                           np.array([[1e-9, 3e-10], [3e-10, 2e-9]]))
        c.add_vsource("v", "a", GROUND, 1.0)
        system = MNASystem(c)
        gd, cd = system.build_matrices(fmt="dense")
        gs, cs = system.build_matrices(fmt="sparse")
        assert np.allclose(gd, gs.toarray())
        assert np.allclose(cd, cs.toarray())
        assert sp.issparse(gs)

    def test_kset_stamp(self):
        c = Circuit("t")
        kmatrix = np.array([[2e9]])
        c.add_k_set("ks", [("a", GROUND)], kmatrix)
        g, cap = MNASystem(c).build_matrices(fmt="dense")
        # Branch row: di/dt - K v = 0 -> C=1 on branch, G = -K on (branch, a).
        assert cap[1, 1] == 1.0
        assert g[1, 0] == pytest.approx(-2e9)
        assert g[0, 1] == 1.0  # KCL

    def test_ground_entries_skipped(self):
        c = Circuit("t")
        c.add_resistor("r", "a", GROUND, 1.0)
        g, _ = MNASystem(c).build_matrices(fmt="dense")
        assert g.shape == (1, 1)
        assert g[0, 0] == pytest.approx(1.0)


class TestRHS:
    def test_isource_direction(self):
        c = Circuit("t")
        c.add_resistor("r", "a", "b", 1.0)
        c.add_isource("i", "a", "b", 2.0)
        b = MNASystem(c).rhs(0.0)
        # Current drawn from n_plus and injected into n_minus.
        assert b[c.node_index("a")] == -2.0
        assert b[c.node_index("b")] == 2.0

    def test_vsource_sign(self):
        c = Circuit("t")
        c.add_vsource("v", "a", GROUND, 5.0)
        c.add_resistor("r", "a", GROUND, 1.0)
        system = MNASystem(c)
        b = system.rhs(0.0)
        assert b[system.branch_index("v")] == -5.0

    def test_time_varying(self):
        from repro.circuit.waveforms import Ramp

        c = Circuit("t")
        c.add_vsource("v", "a", GROUND, Ramp(0, 1, 0, 1e-9))
        c.add_resistor("r", "a", GROUND, 1.0)
        system = MNASystem(c)
        assert system.rhs(0.5e-9)[system.branch_index("v")] == pytest.approx(-0.5)


class TestPassivityStructure:
    def test_g_plus_gt_is_psd_for_rlc(self, signal_grid_extraction):
        # The skew coupling convention must leave G + G^T PSD -- the
        # property PRIMA's passivity proof needs.
        c = Circuit("t")
        c.add_resistor("r1", "a", "b", 10.0)
        c.add_capacitor("c1", "b", GROUND, 1e-12)
        c.add_inductor("l1", "b", "c", 1e-9)
        c.add_resistor("r2", "c", GROUND, 5.0)
        g, cap = MNASystem(c).build_matrices(fmt="dense")
        eig_g = np.linalg.eigvalsh(g + g.T)
        eig_c = np.linalg.eigvalsh((cap + cap.T) / 2)
        assert eig_g.min() > -1e-12
        assert eig_c.min() > -1e-15
