"""Property-based tests of the circuit engine on randomized networks.

These pin down structural theorems rather than specific values:

* reciprocity: transfer impedance of a passive RLC network is symmetric
  (Z_ij = Z_ji);
* passivity: a source-free RLC network only ever dissipates the energy
  stored in its initial state;
* the K-matrix element is exactly equivalent to the L element for any
  SPD inductance matrix;
* DC superposition: responses to independent sources add.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.ac import ac_impedance
from repro.circuit.dc import dc_operating_point
from repro.circuit.mna import MNASystem
from repro.circuit.netlist import GROUND, Circuit
from repro.circuit.transient import transient_analysis


def random_rlc(rng: np.random.Generator, num_nodes: int = 6) -> Circuit:
    """A random connected passive RLC network over ``num_nodes`` nodes."""
    circuit = Circuit("random")
    names = [f"n{k}" for k in range(num_nodes)]
    # Spanning chain of resistors guarantees connectivity + DC paths.
    prev = GROUND
    for name in names:
        circuit.add_resistor(
            f"rspan_{name}", prev, name, float(rng.uniform(1.0, 200.0))
        )
        prev = name
    # Random extra elements.
    for k in range(num_nodes):
        a, b = rng.choice(num_nodes + 1, size=2, replace=False)
        na = GROUND if a == num_nodes else names[a]
        nb = GROUND if b == num_nodes else names[b]
        kind = rng.integers(3)
        if kind == 0:
            circuit.add_resistor(f"r{k}", na, nb,
                                 float(rng.uniform(1.0, 500.0)))
        elif kind == 1:
            circuit.add_capacitor(f"c{k}", na, nb,
                                  float(rng.uniform(1e-15, 1e-12)))
        else:
            circuit.add_series_rl(
                f"s{k}", na, nb,
                float(rng.uniform(0.5, 20.0)),
                float(rng.uniform(1e-11, 5e-9)),
            )
    return circuit


class TestReciprocity:
    @given(seed=st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_transfer_impedance_symmetric(self, seed):
        rng = np.random.default_rng(seed)
        circuit = random_rlc(rng)
        freq = [float(rng.uniform(1e8, 1e10))]
        system = MNASystem(circuit)
        g, c = system.build_matrices(fmt="dense")

        def transfer(inject: str, sense: str) -> complex:
            b = np.zeros(system.size, dtype=complex)
            b[system.node_index(inject)] = 1.0
            omega = 2 * np.pi * freq[0]
            x = np.linalg.solve(g + 1j * omega * c, b)
            return complex(x[system.node_index(sense)])

        z_ab = transfer("n0", "n3")
        z_ba = transfer("n3", "n0")
        assert z_ab == pytest.approx(z_ba, rel=1e-8)


class TestPassivity:
    @given(seed=st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_source_free_network_decays(self, seed):
        rng = np.random.default_rng(seed)
        circuit = random_rlc(rng, num_nodes=5)
        system = MNASystem(circuit)
        # Start from a random bounded state and let it relax.
        x0 = rng.uniform(-1.0, 1.0, size=system.size)
        res = transient_analysis(system, 2e-9, 2e-12, x0=x0)
        data = res.data
        assert np.all(np.isfinite(data))
        # Late-time amplitude must not exceed the initial amplitude scale:
        # the network has no sources, so energy can only decrease.
        start_amp = np.max(np.abs(data[:3]))
        late_amp = np.max(np.abs(data[-max(3, len(data) // 10):]))
        assert late_amp <= start_amp * 1.5 + 1e-9


class TestKEquivalence:
    @given(seed=st.integers(0, 1000), size=st.integers(2, 5))
    @settings(max_examples=20, deadline=None)
    def test_k_element_equals_l_element(self, seed, size):
        rng = np.random.default_rng(seed)
        # Random SPD inductance matrix.
        a = rng.normal(size=(size, size))
        l_matrix = (a @ a.T) * 1e-10 + np.eye(size) * 1e-9

        def build(kind: str) -> Circuit:
            circuit = Circuit(kind)
            branches = []
            for j in range(size):
                circuit.add_resistor(f"r{j}", "p", f"x{j}",
                                     float(rng.uniform(1, 20)))
                branches.append((f"x{j}", GROUND))
            if kind == "L":
                circuit.add_inductor_set("s", branches, l_matrix)
            else:
                circuit.add_k_set("s", branches, np.linalg.inv(l_matrix))
            return circuit

        freqs = [1e8, 1e9, 1e10]
        # Seed both builds with identical resistor draws.
        rng = np.random.default_rng(seed + 1)
        z_l = ac_impedance(build("L"), freqs, ("p", GROUND))
        rng = np.random.default_rng(seed + 1)
        z_k = ac_impedance(build("K"), freqs, ("p", GROUND))
        assert np.allclose(z_l, z_k, rtol=1e-8)


class TestSuperposition:
    @given(
        seed=st.integers(0, 1000),
        i1=st.floats(-1e-3, 1e-3),
        i2=st.floats(-1e-3, 1e-3),
    )
    @settings(max_examples=20, deadline=None)
    def test_dc_responses_add(self, seed, i1, i2):
        def build(a: float, b: float) -> Circuit:
            rng = np.random.default_rng(seed)
            circuit = random_rlc(rng, num_nodes=4)
            circuit.add_isource("s1", GROUND, "n0", a)
            circuit.add_isource("s2", GROUND, "n2", b)
            return circuit

        v_both = dc_operating_point(build(i1, i2))
        v_1 = dc_operating_point(build(i1, 0.0))
        v_2 = dc_operating_point(build(0.0, i2))
        assert np.allclose(v_both, v_1 + v_2, atol=1e-9)
