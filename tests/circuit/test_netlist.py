"""Circuit container and element validation."""

import numpy as np
import pytest

from repro.circuit.elements import InductorSet, KInductorSet
from repro.circuit.netlist import GROUND, Circuit


@pytest.fixture
def circuit():
    return Circuit("t")


class TestNodes:
    def test_ground_index(self, circuit):
        assert circuit.node_index(GROUND) == -1

    def test_indices_assigned_in_order(self, circuit):
        circuit.add_resistor("r1", "a", "b", 1.0)
        circuit.add_resistor("r2", "b", "c", 1.0)
        assert circuit.node_index("a") == 0
        assert circuit.node_index("b") == 1
        assert circuit.node_index("c") == 2
        assert circuit.num_nodes == 3

    def test_unknown_node_raises(self, circuit):
        with pytest.raises(KeyError):
            circuit.node_index("nope")

    def test_node_names_order(self, circuit):
        circuit.add_resistor("r1", "z", "a", 1.0)
        assert circuit.node_names == ["z", "a"]


class TestElements:
    def test_duplicate_names_rejected(self, circuit):
        circuit.add_resistor("x", "a", "b", 1.0)
        with pytest.raises(ValueError):
            circuit.add_capacitor("x", "a", "b", 1e-12)

    def test_nonpositive_values_rejected(self, circuit):
        with pytest.raises(ValueError):
            circuit.add_resistor("r", "a", "b", 0.0)
        with pytest.raises(ValueError):
            circuit.add_capacitor("c", "a", "b", -1e-12)
        with pytest.raises(ValueError):
            circuit.add_inductor("l", "a", "b", 0.0)

    def test_mutual_requires_known_inductors(self, circuit):
        circuit.add_inductor("l1", "a", "b", 1e-9)
        with pytest.raises(ValueError):
            circuit.add_mutual("m", "l1", "l2", 1e-10)

    def test_mutual_requires_distinct(self, circuit):
        circuit.add_inductor("l1", "a", "b", 1e-9)
        with pytest.raises(ValueError):
            circuit.add_mutual("m", "l1", "l1", 1e-10)

    def test_inductor_set_shape_checked(self, circuit):
        with pytest.raises(ValueError):
            circuit.add_inductor_set("ls", [("a", "b")], np.eye(2))

    def test_inductor_set_symmetry_checked(self):
        with pytest.raises(ValueError):
            InductorSet("ls", (("a", "b"), ("c", "d")),
                        np.array([[1.0, 0.5], [0.2, 1.0]]))

    def test_k_set_symmetry_checked(self):
        with pytest.raises(ValueError):
            KInductorSet("ks", (("a", "b"), ("c", "d")),
                         np.array([[1.0, 0.5], [0.2, 1.0]]))

    def test_scalar_source_value_wrapped_as_dc(self, circuit):
        src = circuit.add_vsource("v", "a", GROUND, 1.2)
        assert src.waveform(123.0) == 1.2

    def test_series_rl_creates_internal_node(self, circuit):
        r, l = circuit.add_series_rl("seg", "a", "b", 10.0, 1e-9)
        assert r.n2 == l.n1 == "seg:m"
        assert circuit.node_index("seg:m") >= 0

    def test_device_interface_enforced(self, circuit):
        class Bogus:
            name = "b"

        with pytest.raises(TypeError):
            circuit.add_device(Bogus())


class TestStats:
    def test_counts(self, circuit):
        circuit.add_resistor("r", "a", "b", 1.0)
        circuit.add_capacitor("c", "b", GROUND, 1e-12)
        circuit.add_inductor("l1", "a", "c", 1e-9)
        circuit.add_inductor("l2", "c", "d", 1e-9)
        circuit.add_mutual("m", "l1", "l2", 1e-10)
        circuit.add_inductor_set(
            "ls", [("d", "e"), ("e", "f")],
            np.array([[1e-9, 2e-10], [2e-10, 1e-9]]),
        )
        stats = circuit.stats()
        assert stats["resistors"] == 1
        assert stats["capacitors"] == 1
        assert stats["inductors"] == 4  # 2 scalar + 2 set branches
        assert stats["mutuals"] == 2  # 1 scalar + 1 in-set coupling

    def test_repr_mentions_counts(self, circuit):
        circuit.add_resistor("r", "a", "b", 1.0)
        assert "R=1" in repr(circuit)
