"""Transient Newton without dense materialization.

The PR 9 regression suite for the transient solve path: with sparse
matrices the per-step Newton iteration stamps the device Jacobian as a
sparse update (never ``todense()``), with operator-backed C the
companion systems solve through the Krylov rung, and both agree with
the legacy dense formulation.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.circuit.devices import CMOSInverter
from repro.circuit.mna import MNASystem
from repro.circuit.netlist import GROUND, Circuit
from repro.circuit.transient import transient_analysis
from repro.circuit.waveforms import Ramp
from repro.obs import metrics as obs_metrics
from repro.resilience import inject_faults

T_STOP = 1e-9
DT = 0.02e-9


def _inverter_circuit():
    c = Circuit("t")
    c.add_vsource("vdd", "vdd", GROUND, 1.2)
    c.add_vsource("vin", "in", GROUND, Ramp(0.0, 1.2, 0.1e-9, 0.7e-9))
    c.add_device(CMOSInverter("u", "in", "out", "vdd", GROUND))
    c.add_capacitor("cl", "out", GROUND, 10e-15)
    c.add_resistor("rl", "out", GROUND, 1e6)
    return c


def _forced_format_system(circuit, fmt):
    """MNASystem whose auto format resolves to ``fmt``.

    The auto heuristic picks dense below 2500 unknowns, so small-n tests
    pin the format explicitly to exercise the sparse/operator paths.
    """
    system = MNASystem(circuit)
    original = system.build_matrices
    system.build_matrices = lambda _fmt="auto": original(fmt)
    return system


def _run(circuit_or_system, **kwargs):
    kwargs.setdefault("method", "be")
    kwargs.setdefault("x0", "zero")
    kwargs.setdefault("newton_tol", 1e-10)
    with inject_faults():
        return transient_analysis(circuit_or_system, T_STOP, DT, **kwargs)


@pytest.fixture
def no_densify(monkeypatch):
    """Make every sparse->dense conversion raise for the test's duration."""

    def boom(self, *args, **kwargs):  # pragma: no cover - failure path
        raise AssertionError(
            f"{type(self).__name__} was densified on the solve path"
        )

    for cls in (sp.csr_matrix, sp.csc_matrix, sp.coo_matrix):
        monkeypatch.setattr(cls, "toarray", boom, raising=False)
        monkeypatch.setattr(cls, "todense", boom, raising=False)


class TestSparseNewton:
    def test_sparse_run_never_densifies(self, no_densify):
        circuit = _inverter_circuit()
        result = _run(_forced_format_system(circuit, "sparse"))
        v_out = result.voltage("out")
        assert np.all(np.isfinite(v_out))
        # The inverter actually switched: high at t=0, low after the
        # input ramp -- the run did real Newton work, not a no-op.
        assert v_out[5] > 1.0
        assert v_out[-1] < 0.2

    def test_sparse_agrees_with_dense(self):
        circuit = _inverter_circuit()
        dense = _run(_forced_format_system(circuit, "dense"))
        sparse = _run(_forced_format_system(circuit, "sparse"))
        assert np.max(np.abs(dense.data - sparse.data)) < 1e-8

    def test_sparse_trajectories_are_reproducible(self):
        circuit = _inverter_circuit()
        first = _run(_forced_format_system(circuit, "sparse"))
        second = _run(_forced_format_system(circuit, "sparse"))
        assert first.data.tobytes() == second.data.tobytes()


class _DenseBackedOperator:
    """Minimal operator-set backend: a dense SPD L behind the operator
    interface, with a diagonal near field and the full off-diagonal
    remainder as (trivially low-rank) Woodbury factors, so the Krylov
    preconditioner is exact."""

    def __init__(self, matrix):
        self._m = np.asarray(matrix, dtype=float)
        self.shape = self._m.shape
        self.diag = np.diagonal(self._m).copy()
        self.memory_bytes = self._m.nbytes

    def matvec(self, x):
        return self._m @ x

    def to_dense(self):
        return self._m.copy()

    def near_block_diagonal(self):
        return sp.csr_matrix(np.diag(self.diag))

    def far_lowrank(self):
        off_diag = self._m - np.diag(self.diag)
        return off_diag, np.eye(self.shape[0])


def _coupled_rl_circuit():
    """Two coupled inductive branches driven through an inverter."""
    rng = np.random.default_rng(17)
    m = rng.normal(size=(2, 2)) * 1e-10
    l_matrix = m @ m.T + np.eye(2) * 1e-9
    c = Circuit("t")
    c.add_vsource("vdd", "vdd", GROUND, 1.2)
    c.add_vsource("vin", "in", GROUND, Ramp(0.0, 1.2, 0.1e-9, 0.7e-9))
    c.add_device(CMOSInverter("u", "in", "out", "vdd", GROUND))
    c.add_resistor("r1", "out", "m1", 5.0)
    c.add_resistor("r2", "out", "m2", 5.0)
    c.add_capacitor("c1", "far", GROUND, 20e-15)
    c.add_resistor("rl", "far", GROUND, 1e5)
    return c, l_matrix, (("m1", "far"), ("m2", "far"))


class TestOperatorTransient:
    def test_operator_agrees_with_dense(self):
        circuit, l_matrix, branches = _coupled_rl_circuit()
        circuit.add_inductor_operator_set(
            "L", branches, _DenseBackedOperator(l_matrix)
        )
        fallbacks0 = obs_metrics.counter("solver.krylov_fallbacks").value
        solves0 = obs_metrics.counter("solver.krylov_solves").value
        operator = _run(_forced_format_system(circuit, "operator"))
        dense = _run(_forced_format_system(circuit, "dense"))
        assert np.max(np.abs(operator.data - dense.data)) < 1e-8
        assert obs_metrics.counter("solver.krylov_solves").value > solves0
        assert (
            obs_metrics.counter("solver.krylov_fallbacks").value == fallbacks0
        )

    def test_linear_operator_transient(self):
        # No devices: the linear step path must also route the operator
        # companion through the Krylov rung.
        circuit, l_matrix, branches = _coupled_rl_circuit()
        circuit.devices.clear()
        circuit.add_resistor("rdrv", "in", "out", 50.0)
        circuit.add_inductor_operator_set(
            "L", branches, _DenseBackedOperator(l_matrix)
        )
        operator = _run(_forced_format_system(circuit, "operator"))
        dense = _run(_forced_format_system(circuit, "dense"))
        assert np.max(np.abs(operator.data - dense.data)) < 1e-8
