"""SweepPattern: preassembled union-CSC sweeps must be bit-identical.

The serial AC / companion sweeps used to rebuild ``(G + 1j*omega*C)``
(structural merge + CSR->CSC conversion) at every point; SweepPattern
does the merge once and only refreshes the data vector.  These tests
pin the contract that made the swap safe: the produced CSC matrix is
*bit-identical* to the naive construction -- same structure arrays,
same data bits -- at every sweep point, including the pruning edge
cases (stored zeros, omega == 0).
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.circuit.linalg import SweepAssembler, SweepPattern


def _random_gc(n=30, density=0.12, seed=0, stored_zeros=False):
    rng = np.random.default_rng(seed)
    g = sp.random(n, n, density=density, random_state=rng.integers(2**31))
    c = sp.random(n, n, density=density, random_state=rng.integers(2**31))
    g = (g + sp.eye(n)).tocsr()
    c = c.tocsr()
    if stored_zeros:
        # Explicit zeros survive tocsr() but scipy's binary ops prune
        # them; the pattern must reproduce that pruning.
        g = g.copy()
        g.data[:3] = 0.0
        c = c.copy()
        c.data[-2:] = 0.0
    return g, c


def _assert_bit_identical(built, legacy):
    assert built.format == legacy.format == "csc"
    np.testing.assert_array_equal(built.indptr, legacy.indptr)
    np.testing.assert_array_equal(built.indices, legacy.indices)
    assert built.data.tobytes() == legacy.data.tobytes()


class TestAtOmega:
    @pytest.mark.parametrize("omega", [1.0, 2 * np.pi * 1e9, 1e-3, 1e12])
    def test_bit_identical_to_naive_build(self, omega):
        g, c = _random_gc()
        pattern = SweepPattern(g, c)
        _assert_bit_identical(
            pattern.at_omega(omega), (g + 1j * omega * c).tocsc()
        )

    def test_stored_zeros_are_pruned_like_scipy(self):
        g, c = _random_gc(stored_zeros=True)
        pattern = SweepPattern(g, c)
        _assert_bit_identical(
            pattern.at_omega(3.0), (g + 3.0j * c).tocsc()
        )

    def test_omega_zero_matches_legacy_structure(self):
        # scipy prunes the C-only entries at omega = 0 (1j*0*c collapses
        # to exact zero); the pattern must reproduce that structure so
        # downstream factorizations match bitwise.
        g, c = _random_gc(seed=4)
        pattern = SweepPattern(g, c)
        _assert_bit_identical(
            pattern.at_omega(0.0), (g + 0.0j * c).tocsc()
        )

    def test_disjoint_patterns(self):
        n = 10
        g = sp.diags([2.0] * n).tocsr()
        c = sp.diags([1.0] * (n - 1), offsets=1).tocsr()
        pattern = SweepPattern(g, c)
        _assert_bit_identical(
            pattern.at_omega(7.0), (g + 7.0j * c).tocsc()
        )

    def test_many_points_share_one_pattern(self):
        g, c = _random_gc(seed=8)
        pattern = SweepPattern(g, c)
        for omega in np.logspace(3, 11, 9):
            _assert_bit_identical(
                pattern.at_omega(float(omega)),
                (g + 1j * float(omega) * c).tocsc(),
            )


class TestAtAlpha:
    @pytest.mark.parametrize("alpha", [1.0, 2.0 / 1e-12, 1e-9])
    def test_bit_identical_to_naive_build(self, alpha):
        g, c = _random_gc(seed=2)
        pattern = SweepPattern(g, c)
        _assert_bit_identical(
            pattern.at_alpha(alpha), (alpha * c + g).tocsc()
        )

    def test_alpha_zero_matches_legacy_structure(self):
        g, c = _random_gc(seed=5)
        pattern = SweepPattern(g, c)
        _assert_bit_identical(
            pattern.at_alpha(0.0), (0.0 * c + g).tocsc()
        )


class TestSweepAssembler:
    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="shape mismatch"):
            SweepPattern(sp.eye(3).tocsr(), sp.eye(4).tocsr())

    def test_dense_mode_is_plain_arithmetic(self):
        g = np.eye(4)
        c = np.diag([1.0, 2.0, 3.0, 4.0])
        assembler = SweepAssembler(g, c)
        assert assembler.mode == "dense"
        np.testing.assert_array_equal(
            assembler.at_omega(2.0), g + 2.0j * c
        )
        np.testing.assert_array_equal(
            assembler.at_alpha(3.0), 3.0 * c + g
        )

    def test_sparse_mode_uses_pattern(self):
        g, c = _random_gc(seed=6)
        assembler = SweepAssembler(g, c)
        assert assembler.mode == "sparse"
        _assert_bit_identical(
            assembler.at_omega(5.0), (g + 5.0j * c).tocsc()
        )
