"""Source waveforms."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.waveforms import DC, PWL, Pulse, Ramp, SineWave


class TestDC:
    def test_constant(self):
        w = DC(3.3)
        assert w(0.0) == 3.3
        assert w(1e9) == 3.3


class TestRamp:
    def test_shape(self):
        w = Ramp(0.0, 1.2, delay=1e-9, rise_time=2e-9)
        assert w(0.0) == 0.0
        assert w(1e-9) == 0.0
        assert w(2e-9) == pytest.approx(0.6)
        assert w(3e-9) == pytest.approx(1.2)
        assert w(10e-9) == 1.2

    def test_falling(self):
        w = Ramp(1.2, 0.0, delay=0.0, rise_time=1e-9)
        assert w(0.5e-9) == pytest.approx(0.6)

    def test_rejects_zero_rise(self):
        with pytest.raises(ValueError):
            Ramp(0, 1, 0, 0.0)

    @given(t=st.floats(0, 1e-6))
    @settings(max_examples=50)
    def test_bounded(self, t):
        w = Ramp(0.2, 1.0, 1e-9, 3e-9)
        assert 0.2 <= w(t) <= 1.0


class TestPulse:
    def test_single_pulse_phases(self):
        w = Pulse(v0=0.0, v1=1.0, delay=1e-9, rise_time=1e-9,
                  fall_time=1e-9, width=2e-9, period=0.0)
        assert w(0.5e-9) == 0.0
        assert w(1.5e-9) == pytest.approx(0.5)
        assert w(3e-9) == 1.0
        assert w(4.5e-9) == pytest.approx(0.5)
        assert w(10e-9) == 0.0

    def test_periodic(self):
        w = Pulse(v0=0.0, v1=1.0, delay=0.0, rise_time=1e-9,
                  fall_time=1e-9, width=1e-9, period=10e-9)
        assert w(1.5e-9) == w(11.5e-9)

    def test_rejects_bad_edges(self):
        with pytest.raises(ValueError):
            Pulse(0, 1, rise_time=0.0)

    def test_rejects_period_shorter_than_shape(self):
        # Regression: a period shorter than rise + width + fall would
        # silently truncate the pulse mid-edge on every wrap.
        with pytest.raises(ValueError, match="period"):
            Pulse(v0=0.0, v1=1.0, rise_time=1e-9, fall_time=1e-9,
                  width=2e-9, period=3e-9)

    def test_period_exactly_covering_shape_is_fine(self):
        w = Pulse(v0=0.0, v1=1.0, rise_time=1e-9, fall_time=1e-9,
                  width=2e-9, period=4e-9)
        assert w(0.5e-9) == pytest.approx(0.5)

    def test_zero_period_means_single_pulse(self):
        w = Pulse(v0=0.0, v1=1.0, rise_time=1e-9, fall_time=1e-9,
                  width=2e-9, period=0.0)
        assert w(100e-9) == 0.0


class TestPWL:
    def test_interpolation_and_clamping(self):
        w = PWL(points=((1e-9, 0.0), (2e-9, 1.0), (4e-9, -1.0)))
        assert w(0.0) == 0.0
        assert w(1.5e-9) == pytest.approx(0.5)
        assert w(3e-9) == pytest.approx(0.0)
        assert w(9e-9) == -1.0

    def test_requires_increasing_times(self):
        with pytest.raises(ValueError):
            PWL(points=((1e-9, 0.0), (1e-9, 1.0)))

    def test_requires_points(self):
        with pytest.raises(ValueError):
            PWL(points=())

    def test_time_axis_is_precomputed_once(self):
        # Regression: __call__ sits in the transient inner loop and used
        # to rebuild the times list on every evaluation; the axis is now
        # cached at construction on the frozen instance.
        w = PWL(points=((0.0, 0.0), (1e-9, 1.0), (2e-9, 0.5)))
        assert w._times == (0.0, 1e-9, 2e-9)
        assert w._times is w._times  # stable cached object
        assert w(0.5e-9) == pytest.approx(0.5)
        assert w(1.5e-9) == pytest.approx(0.75)

    def test_points_are_normalized_to_float_tuples(self):
        # Integer/mixed input points are coerced once at construction so
        # the interpolation arithmetic never re-coerces in the hot loop.
        w = PWL(points=[(0, 0), (2, 4)])
        assert w.points == ((0.0, 0.0), (2.0, 4.0))
        assert w(1) == pytest.approx(2.0)


class TestSine:
    def test_values(self):
        w = SineWave(offset=0.5, amplitude=0.5, frequency=1e9)
        assert w(0.0) == pytest.approx(0.5)
        assert w(0.25e-9) == pytest.approx(1.0)
        assert w(0.75e-9) == pytest.approx(0.0)

    def test_holds_before_delay(self):
        w = SineWave(offset=0.5, amplitude=0.5, frequency=1e9, delay=1e-9)
        assert w(0.5e-9) == 0.5

    def test_rejects_bad_frequency(self):
        with pytest.raises(ValueError):
            SineWave(0, 1, 0.0)
