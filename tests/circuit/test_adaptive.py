"""Adaptive-step transient with LTE control."""

import numpy as np
import pytest

from repro.circuit.adaptive import adaptive_transient
from repro.circuit.netlist import GROUND, Circuit
from repro.circuit.transient import transient_analysis
from repro.circuit.waveforms import Ramp


def rc_circuit(tau=1e-9):
    c = Circuit("rc")
    c.add_vsource("vin", "a", GROUND, Ramp(0.0, 1.0, 0.0, 1e-12))
    c.add_resistor("r", "a", "b", 1000.0)
    c.add_capacitor("c", "b", GROUND, tau / 1000.0)
    return c


def rlc_circuit():
    c = Circuit("rlc")
    c.add_vsource("vin", "a", GROUND, Ramp(0.0, 1.0, 0.1e-9, 50e-12))
    c.add_resistor("r", "a", "b", 5.0)
    c.add_inductor("l", "b", "c", 1e-9)
    c.add_capacitor("c1", "c", GROUND, 0.5e-12)
    return c


class TestAccuracy:
    def test_matches_exponential(self):
        res = adaptive_transient(rc_circuit(), 6e-9, 5e-12)
        expected = 1.0 - np.exp(-res.times / 1e-9)
        mask = res.times > 0.1e-9
        err = np.max(np.abs(res.voltage("b")[mask] - expected[mask]))
        assert err < 5e-3

    def test_matches_fixed_step_on_ringing_circuit(self):
        fixed = transient_analysis(rlc_circuit(), 3e-9, 1e-12, record=["c"])
        adaptive = adaptive_transient(rlc_circuit(), 3e-9, 1e-12,
                                      reltol=1e-4, record=["c"])
        resampled = adaptive.resampled(fixed.times)
        err = np.max(np.abs(resampled.voltage("c") - fixed.voltage("c")))
        assert err < 0.02

    def test_tight_tolerance_is_more_accurate(self):
        fixed = transient_analysis(rlc_circuit(), 3e-9, 0.5e-12, record=["c"])

        def error(reltol):
            adaptive = adaptive_transient(rlc_circuit(), 3e-9, 1e-12,
                                          reltol=reltol, record=["c"])
            res = adaptive.resampled(fixed.times)
            return np.max(np.abs(res.voltage("c") - fixed.voltage("c")))

        assert error(1e-5) < error(1e-2)


class TestStepControl:
    def test_fewer_points_than_fixed_step(self):
        # A fast edge then a long quiet tail: adaptive should coast.
        res = adaptive_transient(rc_circuit(), 50e-9, 5e-12)
        fixed_points = int(50e-9 / 5e-12)
        assert len(res.times) < fixed_points / 5

    def test_steps_grow_in_the_tail(self):
        res = adaptive_transient(rc_circuit(), 50e-9, 5e-12)
        steps = np.diff(res.times)
        assert steps[-1] > 5 * steps[0]

    def test_monotone_time_base(self):
        res = adaptive_transient(rlc_circuit(), 3e-9, 1e-12)
        assert np.all(np.diff(res.times) > 0)
        assert res.times[-1] == pytest.approx(3e-9, rel=1e-9)

    def test_factorizations_bounded(self):
        res = adaptive_transient(rc_circuit(), 20e-9, 5e-12)
        assert res.num_factorizations < 60


class TestValidation:
    def test_nonlinear_rejected(self):
        from repro.circuit.devices import CMOSInverter

        c = rc_circuit()
        c.add_vsource("vdd", "vdd", GROUND, 1.2)
        c.add_device(CMOSInverter("u", "a", "o", "vdd", GROUND))
        with pytest.raises(ValueError):
            adaptive_transient(c, 1e-9, 1e-12)

    def test_bad_dt_rejected(self):
        with pytest.raises(ValueError):
            adaptive_transient(rc_circuit(), 1e-9, 2e-9)

    def test_zero_start(self):
        res = adaptive_transient(rc_circuit(), 5e-9, 5e-12, x0="zero")
        assert res.voltage("b")[0] == 0.0
        assert res.voltage("b")[-1] == pytest.approx(1.0, abs=0.01)
