"""Transient integration against closed-form responses."""

import numpy as np
import pytest

from repro.circuit.netlist import GROUND, Circuit
from repro.circuit.transient import transient_analysis
from repro.circuit.waveforms import DC, Ramp


def rc_circuit(r=1000.0, cap=1e-12):
    c = Circuit("rc")
    c.add_vsource("vin", "a", GROUND, Ramp(0.0, 1.0, 0.0, 1e-13))
    c.add_resistor("r", "a", "b", r)
    c.add_capacitor("c", "b", GROUND, cap)
    return c


class TestRC:
    def test_step_response_matches_exponential(self):
        tau = 1e-9
        c = rc_circuit()
        res = transient_analysis(c, 5e-9, 5e-12)
        v = res.voltage("b")
        expected = 1.0 - np.exp(-res.times / tau)
        # Skip the stimulus edge itself.
        mask = res.times > 0.2e-9
        assert np.max(np.abs(v[mask] - expected[mask])) < 0.01

    def test_be_more_damped_but_converges(self):
        c1 = rc_circuit()
        c2 = rc_circuit()
        trap = transient_analysis(c1, 5e-9, 5e-12, method="trap")
        be = transient_analysis(c2, 5e-9, 5e-12, method="be")
        assert be.voltage("b")[-1] == pytest.approx(
            trap.voltage("b")[-1], abs=0.01
        )

    def test_dt_validation(self):
        c = rc_circuit()
        with pytest.raises(ValueError):
            transient_analysis(c, 1e-9, 2e-9)
        with pytest.raises(ValueError):
            transient_analysis(c, 1e-9, 0.0)

    def test_method_validation(self):
        with pytest.raises(ValueError):
            transient_analysis(rc_circuit(), 1e-9, 1e-12, method="magic")


class TestRL:
    def test_inductor_current_rise(self):
        # Series RL driven by a step: i(t) = (V/R)(1 - exp(-tR/L)).
        c = Circuit("rl")
        c.add_vsource("vin", "a", GROUND, Ramp(0.0, 1.0, 0.0, 1e-13))
        c.add_resistor("r", "a", "b", 10.0)
        c.add_inductor("l", "b", GROUND, 10e-9)
        tau = 10e-9 / 10.0
        res = transient_analysis(c, 5e-9, 2e-12)
        i = res.current("l")
        expected = 0.1 * (1.0 - np.exp(-res.times / tau))
        mask = res.times > 0.2e-9
        assert np.max(np.abs(i[mask] - expected[mask])) < 0.002


class TestLC:
    def test_resonant_ringing_frequency(self):
        # Lightly damped series RLC rings at ~f0 = 1/(2 pi sqrt(LC)).
        c = Circuit("rlc")
        c.add_vsource("vin", "a", GROUND, Ramp(0.0, 1.0, 0.0, 1e-12))
        c.add_resistor("r", "a", "b", 1.0)
        c.add_inductor("l", "b", "c", 1e-9)
        c.add_capacitor("c1", "c", GROUND, 1e-12)
        res = transient_analysis(c, 3e-9, 1e-12)
        v = res.voltage("c")
        # Count zero crossings of (v - 1) to estimate the ring period.
        sign_changes = np.nonzero(np.diff(np.sign(v - 1.0)))[0]
        assert len(sign_changes) >= 4
        periods = 2 * np.diff(res.times[sign_changes])
        f_est = 1.0 / np.mean(periods)
        f0 = 1.0 / (2 * np.pi * np.sqrt(1e-9 * 1e-12))
        assert f_est == pytest.approx(f0, rel=0.05)

    def test_trapezoidal_preserves_ringing_longer_than_be(self):
        def build():
            c = Circuit("rlc")
            c.add_vsource("vin", "a", GROUND, Ramp(0.0, 1.0, 0.0, 1e-12))
            c.add_resistor("r", "a", "b", 0.5)
            c.add_inductor("l", "b", "c", 1e-9)
            c.add_capacitor("c1", "c", GROUND, 1e-12)
            return c

        trap = transient_analysis(build(), 4e-9, 2e-12, method="trap")
        be = transient_analysis(build(), 4e-9, 2e-12, method="be")
        tail = trap.times > 3e-9
        ring_trap = np.ptp(trap.voltage("c")[tail])
        ring_be = np.ptp(be.voltage("c")[tail])
        assert ring_trap > ring_be


class TestCoupledInductors:
    def test_transformer_voltage_induction(self):
        # Driving L1 induces M * di/dt across open L2.
        c = Circuit("xfmr")
        c.add_vsource("vin", "a", GROUND, Ramp(0.0, 1.0, 0.0, 0.2e-9))
        c.add_resistor("r1", "a", "b", 10.0)
        c.add_inductor("l1", "b", GROUND, 2e-9)
        c.add_inductor("l2", "sec", GROUND, 2e-9)
        c.add_resistor("rsec", "sec", GROUND, 1e6)
        c.add_mutual("m", "l1", "l2", 1e-9)
        res = transient_analysis(c, 1e-9, 1e-12)
        v_sec = res.voltage("sec")
        assert np.max(np.abs(v_sec)) > 1e-3  # induction happened
        i1 = res.current("l1")
        # Induced polarity follows M di1/dt.
        k = np.searchsorted(res.times, 0.1e-9)
        di_dt = np.gradient(i1, res.times)
        assert np.sign(v_sec[k]) == np.sign(di_dt[k])


class TestKSets:
    def test_k_transient_matches_l_transient(self):
        l_matrix = np.array([[2e-9, 0.5e-9], [0.5e-9, 1.2e-9]])

        def build(kind):
            c = Circuit(kind)
            c.add_vsource("vin", "p", GROUND, Ramp(0.0, 1.0, 0.0, 0.1e-9))
            c.add_resistor("r1", "p", "a", 5.0)
            c.add_resistor("r2", "p", "b", 5.0)
            if kind == "L":
                c.add_inductor_set("s", [("a", GROUND), ("b", GROUND)], l_matrix)
            else:
                c.add_k_set("s", [("a", GROUND), ("b", GROUND)],
                            np.linalg.inv(l_matrix))
            return c

        res_l = transient_analysis(build("L"), 2e-9, 1e-12)
        res_k = transient_analysis(build("K"), 2e-9, 1e-12)
        assert np.allclose(res_l.voltage("a"), res_k.voltage("a"), atol=1e-6)
        assert np.allclose(
            res_l.current("s[0]"), res_k.current("s[0]"), atol=1e-7
        )


class TestRecording:
    def test_record_subset(self):
        c = rc_circuit()
        res = transient_analysis(c, 1e-9, 10e-12, record=["b"])
        assert res.voltage("b").shape == res.times.shape
        with pytest.raises(KeyError):
            res.voltage("a")

    def test_ground_voltage_is_zero(self):
        c = rc_circuit()
        res = transient_analysis(c, 1e-9, 10e-12)
        assert np.all(res.voltage("0") == 0.0)

    def test_record_branch_current(self):
        c = rc_circuit()
        res = transient_analysis(c, 1e-9, 10e-12, record=["vin", "b"])
        assert res.current("vin").shape == res.times.shape

    def test_x0_zero_start(self):
        c = Circuit("t")
        c.add_vsource("v", "a", GROUND, DC(1.0))
        c.add_resistor("r", "a", "b", 100.0)
        c.add_capacitor("c1", "b", GROUND, 1e-12)
        res = transient_analysis(c, 2e-9, 2e-12, x0="zero")
        v = res.voltage("b")
        assert v[0] == 0.0
        assert v[-1] == pytest.approx(1.0, abs=0.01)

    def test_x0_explicit_shape_checked(self):
        c = rc_circuit()
        with pytest.raises(ValueError):
            transient_analysis(c, 1e-9, 10e-12, x0=np.zeros(2))
