"""Span tracing: nesting, exception capture, serialization, grafting."""

import pytest

from repro.obs.trace import (
    Span,
    Trace,
    current_span,
    current_span_path,
    current_trace,
    export_spans,
    graft_spans,
    span,
    tracing,
)


class TestNesting:
    def test_children_attach_to_innermost_open_span(self):
        with tracing() as trace:
            with span("outer"):
                with span("inner.a"):
                    pass
                with span("inner.b"):
                    pass
        assert [r.name for r in trace.roots] == ["outer"]
        assert [c.name for c in trace.roots[0].children] == \
            ["inner.a", "inner.b"]

    def test_span_names_depth_first(self):
        with tracing() as trace:
            with span("a"):
                with span("b"):
                    with span("c"):
                        pass
            with span("d"):
                pass
        assert trace.span_names() == ["a", "b", "c", "d"]

    def test_current_span_and_path(self):
        assert current_span() is None
        assert current_span_path() == ""
        with tracing():
            with span("flow"):
                with span("stage") as sp:
                    assert current_span() is sp
                    assert current_span_path() == "flow/stage"
        assert current_span_path() == ""

    def test_untraced_span_still_measures(self):
        # No collector active: the span is not recorded anywhere, but
        # callers can still read the duration off the yielded object.
        assert current_trace() is None
        with span("orphan") as sp:
            pass
        assert sp.duration is not None
        assert sp.duration >= 0.0

    def test_attrs_ride_along_and_are_mutable(self):
        with tracing() as trace:
            with span("stage", size=5) as sp:
                sp.attrs["cached"] = True
        root = trace.roots[0]
        assert root.attrs == {"size": 5, "cached": True}


class TestCompleteness:
    def test_clean_run_closes_every_span(self):
        with tracing() as trace:
            with span("a"):
                with span("b"):
                    pass
        assert trace.open_spans == 0
        assert trace.complete

    def test_open_span_counts_as_leak(self):
        with tracing() as trace:
            with span("a"):
                assert trace.open_spans == 1
                assert not trace.complete
        assert trace.complete


class TestExceptions:
    def test_error_is_recorded_and_reraised(self):
        with tracing() as trace:
            with pytest.raises(RuntimeError, match="boom"):
                with span("doomed"):
                    raise RuntimeError("boom")
        sp = trace.find("doomed")
        assert sp.status == "error"
        assert sp.error == "RuntimeError: boom"
        assert sp.duration is not None  # closed despite the exception
        assert trace.complete

    def test_error_in_child_leaves_parent_ok(self):
        with tracing() as trace:
            with pytest.raises(ValueError):
                with span("parent"):
                    with span("child"):
                        raise ValueError("inner")
        assert trace.find("child").status == "error"
        # The exception also escaped the parent, so it is marked too.
        assert trace.find("parent").status == "error"
        assert trace.open_spans == 0


class TestTimings:
    def test_total_seconds_sums_same_named_spans(self):
        with tracing() as trace:
            for _ in range(3):
                with span("rep"):
                    pass
        total = trace.total_seconds("rep")
        assert total == pytest.approx(
            sum(sp.duration for sp in trace.iter_spans()), rel=1e-9
        )

    def test_self_seconds_excludes_children(self):
        with tracing() as trace:
            with span("outer"):
                with span("inner"):
                    pass
        outer = trace.find("outer")
        assert outer.self_seconds() == pytest.approx(
            outer.duration - outer.children[0].duration, rel=1e-9
        )


class TestSerialization:
    def make_trace(self):
        with tracing() as trace:
            with span("flow", kind="unit"):
                with span("stage", size=3) as sp:
                    sp.attrs["cached"] = False
                with pytest.raises(KeyError):
                    with span("bad"):
                        raise KeyError("x")
        return trace

    def test_round_trip_preserves_tree(self):
        trace = self.make_trace()
        rebuilt = [Span.from_dict(d) for d in export_spans(trace)]
        assert [r.name for r in rebuilt] == [r.name for r in trace.roots]
        orig = list(trace.roots[0].iter_spans())
        back = list(rebuilt[0].iter_spans())
        assert [s.name for s in back] == [s.name for s in orig]
        assert [s.attrs for s in back] == [s.attrs for s in orig]
        assert [s.status for s in back] == [s.status for s in orig]
        assert [s.error for s in back] == [s.error for s in orig]
        assert [s.duration for s in back] == \
            pytest.approx([s.duration for s in orig])

    def test_to_json_reports_leaks(self):
        with tracing() as trace:
            with span("open-me"):
                payload = trace.to_json()
                assert payload["open_spans"] == 1
        assert trace.to_json()["open_spans"] == 0

    def test_graft_under_open_span(self):
        worker = Trace()
        with tracing(worker):
            with span("sweep.chunk", chunk=0):
                pass
        shipped = export_spans(worker)
        with tracing() as parent:
            with span("sweep.solve"):
                graft_spans(shipped)
        root = parent.roots[0]
        assert [c.name for c in root.children] == ["sweep.chunk"]
        assert parent.complete

    def test_graft_without_collector_is_a_no_op(self):
        graft_spans([Span(name="stray", duration=0.0).to_dict()])
        assert current_trace() is None

    def test_format_smoke(self):
        trace = self.make_trace()
        text = trace.format()
        assert "flow" in text and "stage" in text
        assert "KeyError" in text
