"""Metrics registry: instruments, export/merge round-trip, rendering."""

import pytest

from repro.obs.metrics import REGISTRY, MetricsRegistry


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestInstruments:
    def test_counter_accumulates(self, registry):
        c = registry.counter("newton.iterations")
        c.inc()
        c.inc(4)
        assert registry.counter("newton.iterations").value == 5.0

    def test_counter_rejects_negative(self, registry):
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)

    def test_gauge_set_inc_dec(self, registry):
        g = registry.gauge("pool.workers")
        g.set(4)
        g.inc()
        g.dec(2)
        assert g.value == 3.0

    def test_histogram_summary(self, registry):
        h = registry.histogram("solve.seconds")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        assert h.summary() == {
            "count": 3, "sum": 6.0, "min": 1.0, "max": 3.0, "mean": 2.0,
        }

    def test_empty_histogram_summary(self, registry):
        assert registry.histogram("h").summary() == {"count": 0, "sum": 0.0}

    def test_create_or_fetch_is_idempotent(self, registry):
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("y") is registry.gauge("y")

    def test_invalid_names_rejected(self, registry):
        for bad in ("", "has space", 'quo"te', "brace{y}"):
            with pytest.raises(ValueError):
                registry.counter(bad)


class TestExportMerge:
    def populate(self, registry):
        registry.counter("steps").inc(10)
        registry.gauge("size").set(573)
        registry.histogram("dt").observe(1e-12)
        registry.histogram("dt").observe(3e-12)

    def test_export_shape(self, registry):
        self.populate(registry)
        snap = registry.export()
        assert snap["counters"] == {"steps": 10.0}
        assert snap["gauges"] == {"size": 573.0}
        assert snap["histograms"]["dt"]["count"] == 2

    def test_merge_adds_counters_and_histograms(self, registry):
        self.populate(registry)
        other = MetricsRegistry()
        self.populate(other)
        other.gauge("size").set(99)
        registry.merge(other.export())
        snap = registry.export()
        assert snap["counters"]["steps"] == 20.0
        assert snap["gauges"]["size"] == 99.0  # last-write-wins
        hist = snap["histograms"]["dt"]
        assert hist["count"] == 4
        assert hist["sum"] == pytest.approx(8e-12)
        assert hist["min"] == pytest.approx(1e-12)
        assert hist["max"] == pytest.approx(3e-12)

    def test_merge_empty_export_is_a_no_op(self, registry):
        self.populate(registry)
        before = registry.export()
        registry.merge(MetricsRegistry().export())
        assert registry.export() == before

    def test_merge_is_the_worker_wire_format(self, registry):
        # Parent folds in exactly what a pool worker ships back.
        worker = MetricsRegistry()
        worker.counter("sweep.points").inc(7)
        registry.merge(worker.export())
        registry.merge(worker.export())
        assert registry.export()["counters"]["sweep.points"] == 14.0


class TestRender:
    def test_prometheus_text(self, registry):
        registry.counter("extraction.cache.misses").inc(2)
        registry.gauge("mna.density").set(0.25)
        registry.histogram("dt").observe(2.0)
        text = registry.render_prometheus()
        assert "# TYPE extraction_cache_misses counter" in text
        assert "extraction_cache_misses 2" in text
        assert "# TYPE mna_density gauge" in text
        assert "dt_count 1" in text
        assert text.endswith("\n")

    def test_empty_registry_renders_empty(self, registry):
        assert registry.render_prometheus() == ""


class TestReset:
    def test_reset_drops_everything(self, registry):
        registry.counter("a").inc()
        registry.gauge("b").set(1)
        registry.reset()
        snap = registry.export()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_module_registry_exists(self):
        # The process-wide singleton the instrumented modules record to.
        assert isinstance(REGISTRY, MetricsRegistry)
