"""Pool workers ship spans + metrics home; the parent grafts and merges.

The process-pool sweep runs chunks in worker processes whose traces and
registries are invisible to the parent.  :mod:`repro.perf.parallel`
serializes each chunk's span tree and metrics export into the result
tuple; the parent attaches the trees under the supervisor's
``supervisor.run`` span and folds the metrics into the process-wide
registry.  These tests run a real pool (workers > 1) and check both
halves of that contract.
"""

import numpy as np
import pytest

from repro.circuit.ac import ac_impedance
from repro.circuit.netlist import GROUND, Circuit
from repro.obs.metrics import REGISTRY
from repro.obs.trace import tracing


def rlc_ladder(n=6):
    c = Circuit("ladder")
    prev = "p"
    for k in range(n):
        mid = f"m{k}"
        nxt = f"n{k}"
        c.add_resistor(f"r{k}", prev, mid, 3.0 + k)
        c.add_inductor(f"l{k}", mid, nxt, 1e-9)
        c.add_capacitor(f"c{k}", nxt, GROUND, 0.2e-12)
        prev = nxt
    c.add_resistor("rterm", prev, GROUND, 50.0)
    return c


@pytest.fixture
def clean_registry():
    REGISTRY.reset()
    yield REGISTRY
    REGISTRY.reset()


FREQS = np.logspace(6, 10, 9)


class TestWorkerSpanMerge:
    def test_chunk_spans_graft_under_open_span(self, clean_registry):
        with tracing() as trace:
            ac_impedance(rlc_ladder(), FREQS, ("p", GROUND), workers=3)
        assert trace.complete

        root = trace.find("circuit.ac.impedance")
        assert root is not None
        sup = root.find("supervisor.run")
        assert sup is not None
        chunks = [c for c in sup.children if c.name == "sweep.chunk"]
        assert len(chunks) >= 2  # genuinely fanned out

        # Chunk spans cover every point exactly once and keep their
        # worker-side measurements, including the nested solve span.
        assert sum(c.attrs["points"] for c in chunks) == FREQS.size
        assert {c.attrs["chunk"] for c in chunks} == \
            set(range(len(chunks)))
        assert all(c.duration is not None and c.duration >= 0.0
                   for c in chunks)
        assert all(c.status == "ok" for c in chunks)
        assert all(c.find("sweep.solve") is not None for c in chunks)

    def test_pool_accounting_lands_in_registry(self, clean_registry):
        ac_impedance(rlc_ladder(), FREQS, ("p", GROUND), workers=3)
        snap = clean_registry.export()
        assert snap["counters"]["pool.points"] == FREQS.size
        assert snap["counters"]["pool.chunks"] >= 2
        assert snap["gauges"]["pool.workers"] >= 2

    def test_serial_sweep_records_no_chunks(self, clean_registry):
        with tracing() as trace:
            ac_impedance(rlc_ladder(), FREQS, ("p", GROUND), workers=1)
        assert trace.complete
        assert trace.find("circuit.ac.impedance") is not None
        assert trace.find("sweep.chunk") is None
        assert "pool.chunks" not in clean_registry.export()["counters"]

    def test_chunk_spans_are_not_double_shipped(self, clean_registry):
        # Persistent workers handle several chunks; each chunk runs under
        # a fresh trace (and resets the worker registry), so the grafted
        # forest must contain every chunk exactly once no matter how
        # chunks land on workers.
        with tracing() as trace:
            ac_impedance(rlc_ladder(), FREQS, ("p", GROUND), workers=2)
        chunks = [s for s in trace.iter_spans() if s.name == "sweep.chunk"]
        ids = [c.attrs["chunk"] for c in chunks]
        assert sorted(ids) == sorted(set(ids))
        assert sum(c.attrs["points"] for c in chunks) == FREQS.size
