"""H-tree clock generator."""

import numpy as np
import pytest

from repro.geometry.clocktree import HTreeSpec, build_htree_clock
from repro.geometry.layout import Layout
from repro.geometry.segment import default_layer_stack


@pytest.fixture
def layout():
    return Layout(default_layer_stack(6))


class TestHTreeGeometry:
    def test_sink_count_is_four_to_the_levels(self, layout):
        for levels, expected in ((1, 4), (2, 16)):
            fresh = Layout(default_layer_stack(6))
            ports = build_htree_clock(HTreeSpec(levels=levels), fresh)
            assert len(ports.sinks) == expected

    def test_connected_and_valid(self, layout):
        build_htree_clock(HTreeSpec(levels=2), layout)
        assert layout.net_is_connected("clk")
        assert layout.validate() == []

    def test_sinks_are_symmetric_about_center(self, layout):
        spec = HTreeSpec(levels=2, center=(200e-6, 200e-6))
        ports = build_htree_clock(spec, layout)
        cx, cy = spec.center
        dx = np.sort(np.array([s.x - cx for s in ports.sinks]))
        dy = np.sort(np.array([s.y - cy for s in ports.sinks]))
        # Mirror symmetry: the offset multiset equals its own negation.
        assert np.allclose(dx, -dx[::-1])
        assert np.allclose(dy, -dy[::-1])

    def test_widths_taper(self, layout):
        build_htree_clock(HTreeSpec(levels=2, root_width=4e-6, taper=0.5),
                          layout)
        widths = {round(s.width * 1e9) for s in layout.segments}
        assert {4000, 2000} <= widths

    def test_driver_at_center(self, layout):
        spec = HTreeSpec(levels=1, center=(100e-6, 150e-6))
        ports = build_htree_clock(spec, layout)
        assert ports.driver.x == pytest.approx(100e-6)
        assert ports.driver.y == pytest.approx(150e-6)

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            HTreeSpec(levels=0)
        with pytest.raises(ValueError):
            HTreeSpec(taper=0.0)
        with pytest.raises(ValueError):
            HTreeSpec(span=-1.0)

    def test_layer_direction_check(self, layout):
        with pytest.raises(ValueError):
            build_htree_clock(HTreeSpec(h_layer="M6", v_layer="M5"), layout)


@pytest.mark.slow
class TestHTreeBalance:
    def test_htree_skew_is_small(self, layout):
        """A balanced H-tree's sinks switch nearly simultaneously."""
        from repro.analysis.metrics import delay_50, skew
        from repro.circuit.netlist import GROUND
        from repro.circuit.transient import transient_analysis
        from repro.circuit.waveforms import Ramp
        from repro.peec.model import PEECOptions, build_peec_model

        ports = build_htree_clock(HTreeSpec(levels=2, span=150e-6), layout)
        model = build_peec_model(layout, PEECOptions(max_segment_length=60e-6))
        circuit = model.circuit
        drv = model.node_at(ports.driver)
        circuit.add_vsource("Vin", "vin", GROUND, Ramp(0, 1.2, 20e-12, 40e-12))
        circuit.add_resistor("Rdrv", "vin", drv, 25.0)
        sink_nodes = {}
        for k, sink in enumerate(ports.sinks):
            node = model.node_at(sink)
            sink_nodes[sink.name] = node
            circuit.add_capacitor(f"Cl{k}", node, GROUND, 10e-15)
        res = transient_analysis(circuit, 0.6e-9, 2e-12,
                                 record=list(sink_nodes.values()))
        v_in = np.array([Ramp(0, 1.2, 20e-12, 40e-12)(t) for t in res.times])
        delays = [
            delay_50(res.times, v_in, res.voltage(node), 1.2)
            for node in sink_nodes.values()
        ]
        # Perfectly balanced tree: skew is a tiny fraction of the delay.
        assert skew(delays) < 0.05 * max(delays)
