"""Clock-net generator."""

import pytest

from repro.geometry.clocktree import ClockNetSpec, build_clock_net
from repro.geometry.layout import Layout
from repro.geometry.segment import default_layer_stack


@pytest.fixture
def layout():
    return Layout(default_layer_stack(6), name="t")


def spec(**kwargs):
    defaults = dict(
        trunk_y=50e-6,
        trunk_x_start=0.0,
        trunk_length=100e-6,
        num_branches=2,
        branch_length=40e-6,
    )
    defaults.update(kwargs)
    return ClockNetSpec(**defaults)


class TestSpec:
    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            spec(num_branches=0)
        with pytest.raises(ValueError):
            spec(sinks_per_branch=3)
        with pytest.raises(ValueError):
            spec(trunk_length=-1.0)


class TestBuild:
    def test_ports_counts(self, layout):
        ports = build_clock_net(spec(), layout)
        assert len(ports.sinks) == 4  # 2 branches x 2 sinks
        assert ports.driver.net == "clk"

    def test_single_sink_per_branch(self, layout):
        ports = build_clock_net(spec(sinks_per_branch=1), layout)
        assert len(ports.sinks) == 2

    def test_net_connected_through_vias(self, layout):
        build_clock_net(spec(), layout)
        assert layout.net_is_connected("clk")
        assert layout.validate() == []

    def test_driver_at_trunk_start(self, layout):
        ports = build_clock_net(spec(trunk_x_start=7e-6), layout)
        assert ports.driver.x == pytest.approx(7e-6)
        assert ports.driver.layer == "M5"

    def test_sinks_at_branch_ends(self, layout):
        ports = build_clock_net(spec(), layout)
        for sink in ports.sinks:
            assert sink.layer == "M6"
            # Sinks are half a branch above/below the trunk.
            assert abs(sink.y - 50e-6) == pytest.approx(20e-6)

    def test_wrong_layer_direction_rejected(self, layout):
        with pytest.raises(ValueError):
            build_clock_net(spec(trunk_layer="M6", branch_layer="M5"), layout)

    def test_via_per_branch(self, layout):
        build_clock_net(spec(num_branches=3), layout)
        assert len([v for v in layout.vias if v.net == "clk"]) == 3
