"""Layout container: nodes, wires, vias, pads, validation."""

import pytest

from repro.geometry.layout import Layout, NetKind, quantize_point
from repro.geometry.segment import Direction, default_layer_stack


@pytest.fixture
def layout():
    return Layout(default_layer_stack(6), name="t")


class TestNets:
    def test_add_net_idempotent(self, layout):
        a = layout.add_net("sig", NetKind.SIGNAL)
        b = layout.add_net("sig", NetKind.SIGNAL)
        assert a == b

    def test_add_net_conflicting_kind_rejected(self, layout):
        layout.add_net("sig", NetKind.SIGNAL)
        with pytest.raises(ValueError):
            layout.add_net("sig", NetKind.POWER)

    def test_supply_kind_classification(self):
        assert NetKind.POWER.is_supply
        assert NetKind.GROUND.is_supply
        assert NetKind.SHIELD.is_supply
        assert not NetKind.SIGNAL.is_supply


class TestWires:
    def test_add_wire_splits_at_breakpoints(self, layout):
        layout.add_net("sig", NetKind.SIGNAL)
        segs = layout.add_wire(
            "sig", "M6", Direction.X, (0.0, 0.0), 100e-6, 2e-6,
            breakpoints=[30e-6, 70e-6],
        )
        assert len(segs) == 3
        assert [round(s.length * 1e6) for s in segs] == [30, 40, 30]
        # Adjacent pieces share terminals.
        for a, b in zip(segs, segs[1:]):
            assert quantize_point(a.endpoints()[1]) == quantize_point(
                b.endpoints()[0]
            )

    def test_add_wire_ignores_out_of_range_breakpoints(self, layout):
        layout.add_net("sig", NetKind.SIGNAL)
        segs = layout.add_wire(
            "sig", "M6", Direction.X, (0.0, 0.0), 100e-6, 2e-6,
            breakpoints=[-5e-6, 0.0, 100e-6, 150e-6],
        )
        assert len(segs) == 1

    def test_add_wire_sits_on_layer(self, layout):
        layout.add_net("sig", NetKind.SIGNAL)
        (seg,) = layout.add_wire("sig", "M3", Direction.Y, (0.0, 0.0), 50e-6, 1e-6)
        layer = layout.layer("M3")
        assert seg.origin[2] == pytest.approx(layer.z_bottom)
        assert seg.thickness == pytest.approx(layer.thickness)

    def test_wire_requires_registered_net(self, layout):
        with pytest.raises(ValueError):
            layout.add_wire("ghost", "M6", Direction.X, (0.0, 0.0), 1e-6, 1e-6)

    def test_wire_rejects_z_direction(self, layout):
        layout.add_net("sig", NetKind.SIGNAL)
        with pytest.raises(ValueError):
            layout.add_wire("sig", "M6", Direction.Z, (0.0, 0.0), 1e-6, 1e-6)

    def test_unknown_layer(self, layout):
        layout.add_net("sig", NetKind.SIGNAL)
        with pytest.raises((KeyError, ValueError)):
            layout.add_wire("sig", "M99", Direction.X, (0.0, 0.0), 1e-6, 1e-6)


class TestViasAndPads:
    def test_via_endpoints_at_layer_centers(self, layout):
        layout.add_net("VDD", NetKind.POWER)
        via = layout.add_via("VDD", 1e-6, 2e-6, "M5", "M6", 1e-6)
        bottom, top = layout.via_endpoints(via)
        assert bottom[2] == pytest.approx(layout.layer("M5").z_center)
        assert top[2] == pytest.approx(layout.layer("M6").z_center)

    def test_via_rejects_inverted_layers(self, layout):
        layout.add_net("VDD", NetKind.POWER)
        with pytest.raises(ValueError):
            layout.add_via("VDD", 0.0, 0.0, "M6", "M5", 1e-6)

    def test_validate_flags_floating_via(self, layout):
        layout.add_net("VDD", NetKind.POWER)
        layout.add_wire("VDD", "M5", Direction.X, (0.0, 0.0), 10e-6, 2e-6)
        layout.add_via("VDD", 500e-6, 500e-6, "M5", "M6", 1e-6)
        problems = layout.validate()
        assert any("via" in p for p in problems)

    def test_validate_flags_floating_pad(self, layout):
        layout.add_net("VDD", NetKind.POWER)
        layout.add_wire("VDD", "M6", Direction.X, (0.0, 0.0), 10e-6, 2e-6)
        layout.add_pad("VDD", 555e-6, 1e-6)
        problems = layout.validate()
        assert any("pad" in p for p in problems)

    def test_pad_on_wire_end_passes(self, layout):
        layout.add_net("VDD", NetKind.POWER)
        (seg,) = layout.add_wire("VDD", "M6", Direction.X, (0.0, 0.0), 10e-6, 2e-6)
        end = seg.endpoints()[0]
        layout.add_pad("VDD", end[0], end[1])
        assert layout.validate() == []


class TestQueries:
    def test_segments_of_and_kind_queries(self, layout):
        layout.add_net("sig", NetKind.SIGNAL)
        layout.add_net("GND", NetKind.GROUND)
        layout.add_wire("sig", "M6", Direction.X, (0.0, 0.0), 10e-6, 1e-6)
        layout.add_wire("GND", "M6", Direction.X, (0.0, 5e-6), 10e-6, 1e-6)
        assert len(layout.segments_of("sig")) == 1
        assert len(layout.supply_segments()) == 1
        assert len(layout.signal_segments()) == 1

    def test_bounding_box(self, layout):
        layout.add_net("sig", NetKind.SIGNAL)
        layout.add_wire("sig", "M6", Direction.X, (1e-6, 2e-6), 10e-6, 1e-6)
        lo, hi = layout.bounding_box()
        assert lo[0] == pytest.approx(1e-6)
        assert hi[0] == pytest.approx(11e-6)

    def test_bounding_box_empty_raises(self, layout):
        with pytest.raises(ValueError):
            layout.bounding_box()

    def test_parallel_pairs_excludes_orthogonal(self, layout):
        layout.add_net("sig", NetKind.SIGNAL)
        layout.add_wire("sig", "M6", Direction.X, (0.0, 0.0), 10e-6, 1e-6)
        layout.add_wire("sig", "M6", Direction.X, (0.0, 5e-6), 10e-6, 1e-6)
        layout.add_wire("sig", "M5", Direction.Y, (0.0, 0.0), 10e-6, 1e-6)
        pairs = list(layout.parallel_pairs())
        assert pairs == [(0, 1)]

    def test_net_is_connected(self, layout):
        layout.add_net("sig", NetKind.SIGNAL)
        layout.add_wire("sig", "M6", Direction.X, (0.0, 0.0), 10e-6, 1e-6,
                        breakpoints=[5e-6])
        assert layout.net_is_connected("sig")
        layout.add_wire("sig", "M6", Direction.X, (0.0, 50e-6), 10e-6, 1e-6)
        assert not layout.net_is_connected("sig")

    def test_stats_counts(self, layout):
        layout.add_net("sig", NetKind.SIGNAL)
        layout.add_net("GND", NetKind.GROUND)
        layout.add_wire("sig", "M6", Direction.X, (0.0, 0.0), 10e-6, 1e-6)
        layout.add_wire("GND", "M5", Direction.X, (0.0, 0.0), 10e-6, 1e-6)
        stats = layout.stats()
        assert stats["segments"] == 2
        assert stats["segments_signal"] == 1
        assert stats["segments_ground"] == 1


class TestNodeQuantization:
    def test_quantize_point_merges_close_points(self):
        a = quantize_point((1e-6, 2e-6, 3e-6))
        b = quantize_point((1e-6 + 1e-11, 2e-6, 3e-6))
        assert a == b

    def test_quantize_point_separates_distant_points(self):
        a = quantize_point((1e-6, 2e-6, 3e-6))
        b = quantize_point((1.001e-6, 2e-6, 3e-6))
        assert a != b
