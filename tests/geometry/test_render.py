"""ASCII layout rendering."""

import pytest

from repro.geometry.render import layer_summary, render_layout


class TestRenderLayout:
    def test_grid_renders_wires_and_vias(self, small_grid_layout):
        art = render_layout(small_grid_layout, width=60, height=20)
        assert "-" in art
        assert "|" in art
        assert "#" in art
        assert "@" in art  # pads
        assert art.splitlines()[-1].startswith("[power_grid")

    def test_layer_filter(self, small_grid_layout):
        m5_only = render_layout(small_grid_layout, layer="M5")
        # M5 prefers X: the single-layer view has no vertical wires.
        body = "\n".join(m5_only.splitlines()[:-1])
        assert "-" in body
        assert "|" not in body

    def test_dimensions(self, small_grid_layout):
        art = render_layout(small_grid_layout, width=40, height=10)
        lines = art.splitlines()[:-1]
        assert len(lines) == 10
        assert all(len(line) <= 40 for line in lines)

    def test_crossings_marked(self, grid_with_clock):
        layout, _ = grid_with_clock
        art = render_layout(layout, width=80, height=30)
        assert "+" in art

    def test_size_validation(self, small_grid_layout):
        with pytest.raises(ValueError):
            render_layout(small_grid_layout, width=4)

    def test_empty_layout_rejected(self):
        from repro.geometry.layout import Layout
        from repro.geometry.segment import default_layer_stack

        with pytest.raises(ValueError):
            render_layout(Layout(default_layer_stack()))


class TestLayerSummary:
    def test_lists_used_layers_only(self, small_grid_layout):
        summary = layer_summary(small_grid_layout)
        assert "M5:" in summary
        assert "M6:" in summary
        assert "M1:" not in summary

    def test_reports_lengths(self, small_grid_layout):
        summary = layer_summary(small_grid_layout)
        assert "um total" in summary
