"""Test-structure generators (Figures 3, 5-9 topologies)."""

import pytest

from repro.geometry.layout import NetKind
from repro.geometry.structures import (
    build_bus,
    build_ground_plane,
    build_interdigitated_wire,
    build_parallel_bundle,
    build_shielded_line,
    build_signal_over_grid,
    build_twisted_bundle,
)


class TestSignalOverGrid:
    def test_ports_exist(self, signal_grid_structure):
        layout, ports = signal_grid_structure
        assert set(ports.names()) == {
            "driver", "receiver", "gnd_driver", "gnd_receiver"
        }

    def test_return_count(self):
        layout, _ = build_signal_over_grid(length=100e-6, returns_per_side=3)
        grounds = [s for s in layout.segments
                   if s.net == "GND" and s.direction.value == "x"]
        assert len(grounds) == 6

    def test_ground_connected_via_straps(self, signal_grid_structure):
        layout, _ = signal_grid_structure
        assert layout.net_is_connected("GND")

    def test_rejects_zero_returns(self):
        with pytest.raises(ValueError):
            build_signal_over_grid(returns_per_side=0)


class TestShieldedLine:
    def test_shields_adjacent_to_signal(self):
        layout, _ = build_shielded_line(
            length=100e-6, signal_width=2e-6, shield_width=1e-6,
            shield_spacing=2e-6, with_shields=True,
        )
        gnd_x = [s for s in layout.segments
                 if s.net == "GND" and s.direction.value == "x"]
        nearest = min(abs(s.center[1]) for s in gnd_x)
        assert nearest == pytest.approx(2e-6 / 2 + 2e-6 + 1e-6 / 2)

    def test_baseline_has_no_near_shields(self):
        layout, _ = build_shielded_line(
            length=100e-6, with_shields=False, outer_pitch=20e-6,
        )
        gnd_x = [s for s in layout.segments
                 if s.net == "GND" and s.direction.value == "x"]
        assert min(abs(s.center[1]) for s in gnd_x) >= 20e-6 - 1e-9


class TestGroundPlane:
    def test_plane_strip_count(self):
        layout, _ = build_ground_plane(
            length=100e-6, plane_strips=5, plane_layers=("M4",),
            side_returns=False,
        )
        strips = [s for s in layout.segments
                  if s.layer == "M4" and s.direction.value == "x"]
        assert len(strips) == 5

    def test_planes_above_and_below(self):
        layout, _ = build_ground_plane(
            length=100e-6, plane_layers=("M4", "M6"), signal_layer="M5",
            side_returns=False,
        )
        layers = {s.layer for s in layout.segments if s.net == "GND"}
        assert layers == {"M4", "M6"}

    def test_rejects_zero_strips(self):
        with pytest.raises(ValueError):
            build_ground_plane(plane_strips=0)


class TestInterdigitated:
    def test_finger_widths_sum_to_total(self):
        layout, _ = build_interdigitated_wire(
            length=100e-6, total_signal_width=8e-6, num_fingers=4,
        )
        fingers = [s for s in layout.segments
                   if s.net == "sig" and s.direction.value == "x"]
        assert len(fingers) == 4
        assert sum(s.width for s in fingers) == pytest.approx(8e-6)

    def test_shields_between_fingers(self):
        layout, _ = build_interdigitated_wire(
            length=100e-6, total_signal_width=8e-6, num_fingers=4,
            outer_returns=0,
        )
        shields = [s for s in layout.segments
                   if s.net == "GND" and s.direction.value == "x"]
        # 3 between + 2 outside the finger array.
        assert len(shields) == 5

    def test_signal_is_one_connected_wire(self):
        layout, _ = build_interdigitated_wire(num_fingers=3)
        assert layout.net_is_connected("sig")

    def test_single_finger_baseline(self):
        layout, ports = build_interdigitated_wire(num_fingers=1)
        fingers = [s for s in layout.segments
                   if s.net == "sig" and s.direction.value == "x"]
        assert len(fingers) == 1


class TestBus:
    def test_bus_taps_per_net(self):
        layout, ports = build_bus(num_signals=3, length=100e-6)
        for i in range(3):
            assert f"bus{i}:in" in ports.taps
            assert f"bus{i}:out" in ports.taps
        assert layout.nets["bus0"].kind == NetKind.SIGNAL

    def test_edge_grounds_optional(self):
        layout, ports = build_bus(num_signals=2, edge_grounds=False)
        assert "GND" in layout.nets
        assert not layout.segments_of("GND")


class TestBundles:
    def test_parallel_bundle_stays_on_track(self):
        layout, ports = build_parallel_bundle(num_nets=3, num_regions=3)
        # No jogs in a parallel bundle.
        jogs = [s for s in layout.segments
                if s.net.startswith("n") and s.direction.value == "y"]
        assert jogs == []

    def test_twisted_bundle_has_jogs_and_connectivity(self):
        layout, ports = build_twisted_bundle(num_nets=3, num_regions=3)
        jogs = [s for s in layout.segments
                if s.net.startswith("n") and s.direction.value == "y"]
        assert jogs
        for i in range(3):
            assert layout.net_is_connected(f"n{i}")

    def test_twisted_out_track_rotates(self):
        _, ports = build_twisted_bundle(
            num_nets=4, num_regions=2, pitch=4e-6
        )
        # Net 0 starts on track 0 and ends on track (0 + regions-1) % nets.
        assert ports["n0:in"].y == pytest.approx(0.0)
        assert ports["n0:out"].y == pytest.approx(4e-6)

    def test_bundle_rejects_bad_args(self):
        with pytest.raises(ValueError):
            build_twisted_bundle(num_nets=1)
        with pytest.raises(ValueError):
            build_parallel_bundle(num_regions=0)
