"""Power/ground grid generator."""

import pytest

from repro.geometry.grid import PowerGridSpec, _stripe_positions, build_power_grid
from repro.geometry.layout import NetKind
from repro.geometry.segment import default_layer_stack


def small_spec(**kwargs):
    defaults = dict(
        die_width=100e-6,
        die_height=100e-6,
        layer_names=("M5", "M6"),
        stripe_pitch=40e-6,
        stripe_width=2e-6,
        pads_per_net=1,
    )
    defaults.update(kwargs)
    return PowerGridSpec(**defaults)


class TestSpecValidation:
    def test_rejects_bad_dimensions(self):
        with pytest.raises(ValueError):
            small_spec(die_width=-1.0)

    def test_rejects_pitch_below_width(self):
        with pytest.raises(ValueError):
            small_spec(stripe_pitch=1e-6, stripe_width=2e-6)

    def test_rejects_zero_pads(self):
        with pytest.raises(ValueError):
            small_spec(pads_per_net=0)


class TestStripePositions:
    def test_interleaving_spacing(self):
        pos = _stripe_positions(100e-6, 5e-6, 40e-6)
        diffs = [b - a for a, b in zip(pos, pos[1:])]
        assert all(d == pytest.approx(20e-6) for d in diffs)

    def test_too_small_extent_raises(self):
        with pytest.raises(ValueError):
            _stripe_positions(10e-6, 5e-6, 40e-6)


class TestGridGeneration:
    def test_grid_is_valid_layout(self, small_grid_layout):
        assert small_grid_layout.validate() == []

    def test_both_nets_present_and_connected(self, small_grid_layout):
        assert small_grid_layout.nets["VDD"].kind == NetKind.POWER
        assert small_grid_layout.nets["GND"].kind == NetKind.GROUND
        assert small_grid_layout.net_is_connected("VDD")
        assert small_grid_layout.net_is_connected("GND")

    def test_vias_connect_adjacent_layers_only(self, small_grid_layout):
        for via in small_grid_layout.vias:
            lo = small_grid_layout.layer(via.layer_bottom).index
            hi = small_grid_layout.layer(via.layer_top).index
            assert hi == lo + 1

    def test_vias_same_net_at_both_ends(self, small_grid_layout):
        # Every via endpoint lands on metal of its own net (validate covers
        # it, but check the net bookkeeping directly too).
        for via in small_grid_layout.vias:
            assert via.net in ("VDD", "GND")

    def test_pads_per_net(self, small_grid_layout):
        nets = [p.net for p in small_grid_layout.pads]
        assert nets.count("VDD") == 1
        assert nets.count("GND") == 1

    def test_orthogonality_requirement(self, layer_stack):
        spec = small_spec(layer_names=("M4", "M6"))  # both Y-preferring
        with pytest.raises(ValueError):
            build_power_grid(spec, list(layer_stack))

    def test_three_layer_grid(self, layer_stack):
        spec = small_spec(layer_names=("M4", "M5", "M6"), pads_per_net=2)
        layout = build_power_grid(spec, list(layer_stack))
        assert layout.validate() == []
        layers_used = {s.layer for s in layout.segments}
        assert layers_used == {"M4", "M5", "M6"}

    def test_extends_existing_layout(self, layer_stack):
        from repro.geometry.layout import Layout

        base = Layout(list(layer_stack), name="base")
        out = build_power_grid(small_spec(), layout=base)
        assert out is base
        assert len(base.segments) > 0

    def test_stripes_alternate_nets(self, small_grid_layout):
        # On M5 (X stripes), sorted by y-center, nets must alternate.
        m5 = [s for s in small_grid_layout.segments if s.layer == "M5"
              and s.direction.value == "x"]
        by_y = {}
        for seg in m5:
            by_y.setdefault(round(seg.center[1] * 1e9), seg.net)
        nets = [net for _, net in sorted(by_y.items())]
        assert all(a != b for a, b in zip(nets, nets[1:]))
