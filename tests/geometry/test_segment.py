"""Segments, layers, and their pairwise geometry."""

import math

import pytest

from repro.geometry.segment import Direction, Layer, Segment, default_layer_stack


def make_segment(direction=Direction.X, origin=(0.0, 0.0, 1e-6),
                 length=100e-6, width=2e-6, thickness=1e-6, net="sig"):
    return Segment(net=net, layer="M6", direction=direction, origin=origin,
                   length=length, width=width, thickness=thickness, name="s")


class TestDirection:
    def test_axes(self):
        assert Direction.X.axis == 0
        assert Direction.Y.axis == 1
        assert Direction.Z.axis == 2

    def test_parallelism(self):
        assert Direction.X.is_parallel_to(Direction.X)
        assert not Direction.X.is_parallel_to(Direction.Y)


class TestLayerStack:
    def test_default_stack_ordering(self):
        layers = default_layer_stack(6)
        assert [l.name for l in layers] == ["M1", "M2", "M3", "M4", "M5", "M6"]
        z = [l.z_bottom for l in layers]
        assert z == sorted(z)
        assert all(b.z_bottom >= a.z_top for a, b in zip(layers, layers[1:]))

    def test_directions_alternate(self):
        layers = default_layer_stack(4)
        dirs = [l.pitch_direction for l in layers]
        assert dirs == [Direction.X, Direction.Y, Direction.X, Direction.Y]

    def test_upper_layers_thicker_and_less_resistive(self):
        layers = default_layer_stack(6)
        assert layers[-1].thickness > layers[0].thickness
        assert layers[-1].sheet_resistance < layers[0].sheet_resistance

    def test_z_center(self):
        layer = default_layer_stack(2)[0]
        assert layer.z_center == pytest.approx(
            layer.z_bottom + layer.thickness / 2
        )

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            default_layer_stack(0)
        with pytest.raises(ValueError):
            default_layer_stack(11)


class TestSegmentGeometry:
    def test_rejects_nonpositive_dims(self):
        with pytest.raises(ValueError):
            make_segment(length=0.0)
        with pytest.raises(ValueError):
            make_segment(width=-1e-6)

    def test_extents_by_direction(self):
        sx = make_segment(Direction.X)
        assert sx.extents == (100e-6, 2e-6, 1e-6)
        sy = make_segment(Direction.Y)
        assert sy.extents == (2e-6, 100e-6, 1e-6)
        sz = make_segment(Direction.Z)
        assert sz.extents == (2e-6, 1e-6, 100e-6)

    def test_center_and_end(self):
        s = make_segment()
        assert s.end == pytest.approx((100e-6, 2e-6, 2e-6))
        assert s.center == pytest.approx((50e-6, 1e-6, 1.5e-6))

    def test_endpoints_on_axis(self):
        s = make_segment()
        a, b = s.endpoints()
        assert a == pytest.approx((0.0, 1e-6, 1.5e-6))
        assert b == pytest.approx((100e-6, 1e-6, 1.5e-6))

    def test_cross_section_and_volume(self):
        s = make_segment()
        assert s.cross_section_area == pytest.approx(2e-12)
        assert s.volume == pytest.approx(2e-16)


class TestSegmentPairs:
    def test_axial_overlap(self):
        a = make_segment(origin=(0.0, 0.0, 1e-6))
        b = make_segment(origin=(50e-6, 10e-6, 1e-6))
        assert a.axial_overlap(b) == pytest.approx(50e-6)

    def test_axial_overlap_disjoint_is_zero(self):
        a = make_segment()
        b = make_segment(origin=(200e-6, 0.0, 1e-6))
        assert a.axial_overlap(b) == 0.0

    def test_axial_overlap_requires_parallel(self):
        a = make_segment(Direction.X)
        b = make_segment(Direction.Y)
        with pytest.raises(ValueError):
            a.axial_overlap(b)

    def test_transverse_distance(self):
        a = make_segment(origin=(0.0, 0.0, 1e-6))
        b = make_segment(origin=(0.0, 3e-6, 5e-6))
        assert a.transverse_distance(b) == pytest.approx(5e-6)  # 3-4-5

    def test_gap_touching_is_zero(self):
        a = make_segment(origin=(0.0, 0.0, 1e-6))
        b = make_segment(origin=(0.0, 2e-6, 1e-6))  # shares a face
        assert a.gap(b) == pytest.approx(0.0)

    def test_gap_separated(self):
        a = make_segment(origin=(0.0, 0.0, 1e-6))
        b = make_segment(origin=(0.0, 5e-6, 1e-6))
        assert a.gap(b) == pytest.approx(3e-6)  # 5 - width

    def test_center_distance(self):
        a = make_segment(origin=(0.0, 0.0, 1e-6))
        b = make_segment(origin=(0.0, 10e-6, 1e-6))
        assert a.center_distance(b) == pytest.approx(10e-6)


class TestSplitting:
    def test_split_preserves_total_length(self):
        s = make_segment()
        pieces = s.split(4)
        assert len(pieces) == 4
        assert sum(p.length for p in pieces) == pytest.approx(s.length)
        # Pieces abut exactly.
        for a, b in zip(pieces, pieces[1:]):
            assert b.axis_start == pytest.approx(a.axis_end)

    def test_split_one_returns_self(self):
        s = make_segment()
        assert s.split(1) == [s]

    def test_split_rejects_zero(self):
        with pytest.raises(ValueError):
            make_segment().split(0)

    def test_widthwise_strips_cover_width(self):
        s = make_segment()
        strips = s.widthwise_strips(4)
        assert len(strips) == 4
        assert sum(p.width for p in strips) == pytest.approx(s.width)
        ys = sorted(p.origin[1] for p in strips)
        assert ys[0] == pytest.approx(s.origin[1])
        assert ys[-1] + strips[0].width == pytest.approx(s.origin[1] + s.width)

    def test_widthwise_strips_y_direction(self):
        s = make_segment(Direction.Y)
        strips = s.widthwise_strips(2)
        xs = sorted(p.origin[0] for p in strips)
        assert xs[1] - xs[0] == pytest.approx(s.width / 2)
