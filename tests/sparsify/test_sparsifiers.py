"""Section-4 sparsification strategies."""

import numpy as np
import pytest

from repro.extraction.partial_matrix import extract_partial_inductance
from repro.geometry.segment import Direction, Segment
from repro.sparsify import (
    BlockDiagonalSparsifier,
    DenseInductance,
    HaloSparsifier,
    KMatrixSparsifier,
    ShellSparsifier,
    TruncationSparsifier,
    is_positive_definite,
    min_eigenvalue,
    sparsity_ratio,
)
from repro.sparsify.base import InductanceBlocks


def lines(num=8, pitch=4e-6, length=400e-6, net="s"):
    return [
        Segment(net=net, layer="M6", direction=Direction.X,
                origin=(0.0, k * pitch, 7e-6), length=length,
                width=1e-6, thickness=0.5e-6, name=f"l{k}")
        for k in range(num)
    ]


@pytest.fixture(scope="module")
def extraction():
    return extract_partial_inductance(lines())


class TestStability:
    def test_pd_checks(self):
        assert is_positive_definite(np.eye(3))
        assert not is_positive_definite(np.diag([1.0, -0.1, 1.0]))
        assert not is_positive_definite(np.array([[1.0, 2.0], [0.0, 1.0]]))

    def test_min_eigenvalue(self):
        assert min_eigenvalue(np.diag([3.0, -2.0])) == pytest.approx(-2.0)

    def test_sparsity_ratio(self):
        m = np.eye(4)
        assert sparsity_ratio(m) == 1.0
        m[0, 1] = m[1, 0] = 0.5
        assert sparsity_ratio(m) == pytest.approx(1.0 - 2 / 12)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            is_positive_definite(np.ones((2, 3)))


class TestBlocksContainer:
    def test_overlapping_blocks_rejected(self):
        with pytest.raises(ValueError):
            InductanceBlocks(
                kind="L",
                blocks=[([0, 1], np.eye(2)), ([1, 2], np.eye(2))],
            )

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            InductanceBlocks(kind="X", blocks=[])

    def test_to_dense_roundtrip(self, extraction):
        blocks = DenseInductance().apply(extraction)
        assert np.allclose(blocks.to_dense(), extraction.matrix)


class TestTruncation:
    def test_zero_threshold_keeps_all(self, extraction):
        blocks = TruncationSparsifier(threshold=0.0).apply(extraction)
        assert np.allclose(blocks.to_dense(), extraction.matrix)

    def test_full_threshold_drops_all(self, extraction):
        blocks = TruncationSparsifier(threshold=1.0).apply(extraction)
        dense = blocks.to_dense()
        assert np.count_nonzero(dense - np.diag(np.diagonal(dense))) == 0

    def test_threshold_monotone_sparsity(self, extraction):
        s1 = sparsity_ratio(
            TruncationSparsifier(0.05).apply(extraction).to_dense()
        )
        s2 = sparsity_ratio(
            TruncationSparsifier(0.3).apply(extraction).to_dense()
        )
        assert s2 >= s1

    def test_truncation_can_break_positive_definiteness(self):
        # The paper's warning, demonstrated: tightly coupled long parallel
        # lines truncated at an unlucky threshold go indefinite.
        extraction = extract_partial_inductance(
            lines(num=12, pitch=1.5e-6, length=2000e-6)
        )
        assert extraction.is_positive_definite()
        broke = False
        for threshold in (0.3, 0.4, 0.5, 0.6, 0.7):
            dense = TruncationSparsifier(threshold).apply(extraction).to_dense()
            if not is_positive_definite(dense):
                broke = True
                assert min_eigenvalue(dense) < 0.0
                break
        assert broke, "expected truncation to produce an indefinite matrix"

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            TruncationSparsifier(threshold=1.5)


class TestBlockDiagonal:
    def test_partition_covers_all_segments(self, extraction):
        sparsifier = BlockDiagonalSparsifier(num_sections=3)
        blocks = sparsifier.apply(extraction)
        covered = sorted(i for idx, _ in blocks.blocks for i in idx)
        assert covered == list(range(extraction.size))

    def test_always_positive_definite(self, extraction):
        for sections in (1, 2, 4, 8):
            blocks = BlockDiagonalSparsifier(num_sections=sections).apply(
                extraction
            )
            assert is_positive_definite(blocks.to_dense(extraction.size))

    def test_single_section_is_dense(self, extraction):
        blocks = BlockDiagonalSparsifier(num_sections=1).apply(extraction)
        assert np.allclose(blocks.to_dense(), extraction.matrix)

    def test_focus_net_lands_in_one_block(self):
        segs = lines(num=6)
        # Mark the middle two lines as the focus signal.
        segs[2] = Segment(net="clk", layer="M6", direction=Direction.X,
                          origin=segs[2].origin, length=segs[2].length,
                          width=1e-6, thickness=0.5e-6, name="c0")
        segs[3] = Segment(net="clk", layer="M6", direction=Direction.X,
                          origin=segs[3].origin, length=segs[3].length,
                          width=1e-6, thickness=0.5e-6, name="c1")
        extraction = extract_partial_inductance(segs)
        sparsifier = BlockDiagonalSparsifier(
            num_sections=3, axis=1, focus_nets=("clk",)
        )
        sections = sparsifier.partition(extraction)
        containing = [sec for sec in sections if 2 in sec]
        assert containing and 3 in containing[0]

    def test_more_sections_fewer_mutuals(self, extraction):
        m2 = BlockDiagonalSparsifier(num_sections=2).apply(extraction)
        m8 = BlockDiagonalSparsifier(num_sections=8).apply(extraction)
        assert m8.num_mutuals < m2.num_mutuals


class TestShell:
    def test_result_positive_definite(self, extraction):
        blocks = ShellSparsifier(radius=10e-6).apply(extraction)
        assert is_positive_definite(blocks.to_dense(extraction.size))

    def test_far_couplings_dropped(self, extraction):
        blocks = ShellSparsifier(radius=10e-6).apply(extraction)
        dense = blocks.to_dense(extraction.size)
        # Lines 0 and 7 are 28 um apart > radius.
        assert dense[0, 7] == 0.0
        assert dense[0, 1] != 0.0

    def test_diagonal_shifted_down(self, extraction):
        blocks = ShellSparsifier(radius=10e-6).apply(extraction)
        dense = blocks.to_dense(extraction.size)
        assert np.all(np.diagonal(dense) < np.diagonal(extraction.matrix))

    def test_auto_radius_quantile(self, extraction):
        r_small = ShellSparsifier.auto_radius(extraction, keep_fraction=0.1)
        r_large = ShellSparsifier.auto_radius(extraction, keep_fraction=0.9)
        assert r_small < r_large

    def test_validation(self):
        with pytest.raises(ValueError):
            ShellSparsifier(radius=-1.0)
        with pytest.raises(ValueError):
            ShellSparsifier(grow_factor=0.9)


class TestHalo:
    def make_extraction_with_shield(self):
        segs = [
            Segment(net="a", layer="M6", direction=Direction.X,
                    origin=(0.0, 0.0, 7e-6), length=400e-6,
                    width=1e-6, thickness=0.5e-6, name="a"),
            Segment(net="GND", layer="M6", direction=Direction.X,
                    origin=(0.0, 4e-6, 7e-6), length=400e-6,
                    width=1e-6, thickness=0.5e-6, name="g"),
            Segment(net="b", layer="M6", direction=Direction.X,
                    origin=(0.0, 8e-6, 7e-6), length=400e-6,
                    width=1e-6, thickness=0.5e-6, name="b"),
        ]
        return extract_partial_inductance(segs)

    def test_shield_blocks_coupling_across_it(self):
        extraction = self.make_extraction_with_shield()
        blocks = HaloSparsifier(supply_nets=("GND",)).apply(extraction)
        dense = blocks.to_dense(extraction.size)
        assert dense[0, 2] == 0.0  # a-b blocked by the GND line between
        # Couplings to the bounding return shift to ~zero (the return-
        # limited formulation folds them into the loop inductance).
        assert abs(dense[0, 1]) < 0.05 * abs(extraction.matrix[0, 1])
        # Self terms are return-shifted downward...
        assert dense[0, 0] < extraction.matrix[0, 0]
        # ...and the result stays positive definite.
        assert is_positive_definite(dense)

    def test_drop_only_variant_can_lose_passivity(self):
        # The ablation's negative control: geometric dropping without the
        # return shift is just truncation and is not passivity-safe.
        extraction = self.make_extraction_with_shield()
        blocks = HaloSparsifier(
            supply_nets=("GND",), shift=False
        ).apply(extraction)
        dense = blocks.to_dense(extraction.size)
        assert dense[0, 2] == 0.0
        assert dense[0, 0] == extraction.matrix[0, 0]  # no shift applied

    def test_no_supply_keeps_everything(self, extraction):
        blocks = HaloSparsifier(supply_nets=("VDD",)).apply(extraction)
        assert np.allclose(blocks.to_dense(extraction.size), extraction.matrix)

    def test_short_jog_does_not_block(self):
        segs = [
            Segment(net="a", layer="M6", direction=Direction.X,
                    origin=(0.0, 0.0, 7e-6), length=400e-6,
                    width=1e-6, thickness=0.5e-6, name="a"),
            Segment(net="GND", layer="M6", direction=Direction.X,
                    origin=(0.0, 4e-6, 7e-6), length=20e-6,  # short stub
                    width=1e-6, thickness=0.5e-6, name="g"),
            Segment(net="b", layer="M6", direction=Direction.X,
                    origin=(0.0, 8e-6, 7e-6), length=400e-6,
                    width=1e-6, thickness=0.5e-6, name="b"),
        ]
        extraction = extract_partial_inductance(segs)
        blocks = HaloSparsifier(supply_nets=("GND",),
                                min_overlap_fraction=0.5).apply(extraction)
        dense = blocks.to_dense(extraction.size)
        assert dense[0, 2] != 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            HaloSparsifier(min_overlap_fraction=0.0)


class TestKMatrix:
    def test_zero_threshold_is_exact_inverse(self, extraction):
        blocks = KMatrixSparsifier(threshold=0.0).apply(extraction)
        assert blocks.kind == "K"
        _, kmatrix = blocks.blocks[0]
        assert np.allclose(kmatrix @ extraction.matrix, np.eye(extraction.size),
                           atol=1e-6)

    def test_k_is_more_local_than_l(self, extraction):
        # The normalized far-off-diagonal K entries decay faster than L's:
        # that locality is the method's selling point.
        kmatrix = KMatrixSparsifier(threshold=0.0).apply(extraction).blocks[0][1]
        l_matrix = extraction.matrix

        def far_ratio(m):
            d = np.sqrt(np.abs(np.diagonal(m)))
            norm = np.abs(m) / np.outer(d, d)
            return norm[0, -1]

        assert far_ratio(kmatrix) < far_ratio(l_matrix)

    def test_truncated_k_stays_pd_where_l_breaks(self):
        extraction = extract_partial_inductance(
            lines(num=12, pitch=1.5e-6, length=2000e-6)
        )
        blocks = KMatrixSparsifier(threshold=0.05).apply(extraction)
        _, kmatrix = blocks.blocks[0]
        assert is_positive_definite(kmatrix)
        assert sparsity_ratio(kmatrix) > 0.0

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            KMatrixSparsifier(threshold=-0.1)


class TestTruncationDiagonalGuard:
    """Regression: a zero/near-zero/non-finite L_ii used to flow into the
    coupling quotient as NaN/inf, and `NaN < threshold` being False meant
    the drop mask silently kept those mutuals.  Now the malformed
    extraction is refused outright."""

    def make_result(self, diag_override):
        from repro.extraction.partial_matrix import PartialInductanceResult

        segs = lines(num=4)
        result = extract_partial_inductance(segs)
        matrix = result.matrix.copy()
        for i, value in diag_override.items():
            matrix[i, i] = value
        return PartialInductanceResult(segments=segs, matrix=matrix)

    def test_zero_diagonal_rejected(self):
        bad = self.make_result({1: 0.0})
        with pytest.raises(ValueError, match="strictly positive self"):
            TruncationSparsifier().apply(bad)

    def test_near_zero_diagonal_rejected(self):
        bad = self.make_result({2: 1e-30})
        with pytest.raises(ValueError, match="segment indices \\[2\\]"):
            TruncationSparsifier().apply(bad)

    def test_nan_diagonal_rejected(self):
        bad = self.make_result({0: float("nan")})
        with pytest.raises(ValueError, match="non-finite"):
            TruncationSparsifier().apply(bad)

    def test_negative_diagonal_rejected(self):
        bad = self.make_result({3: -1e-12})
        with pytest.raises(ValueError, match="strictly positive"):
            TruncationSparsifier().apply(bad)

    def test_offender_list_is_capped(self):
        bad = self.make_result({i: 0.0 for i in range(4)})
        with pytest.raises(ValueError, match="0, 1, 2, 3"):
            TruncationSparsifier().apply(bad)

    def test_healthy_extraction_unaffected(self, extraction):
        blocks = TruncationSparsifier(threshold=0.0).apply(extraction)
        assert blocks.kind == "L"
