"""Hierarchical assembly as a sparsifier: SPD guard + exact fallback."""

import numpy as np
import pytest

from repro.extraction.partial_matrix import extract_partial_inductance
from repro.geometry.segment import Direction, Segment
from repro.resilience.report import RunReport, activate
from repro.sparsify import HierarchicalSparsifier
from repro.sparsify.base import traced_apply


def stripe_grid(num_lines=8, pieces=4, pitch=4e-6, length=160e-6):
    segments = []
    for i in range(num_lines):
        line = Segment(net=f"n{i}", layer="M6", direction=Direction.X,
                       origin=(0.0, i * pitch, 7e-6), length=length,
                       width=1e-6, thickness=0.5e-6, name=f"s{i}")
        segments.extend(line.split(pieces))
    return segments


class TestApply:
    def test_single_dense_block_close_to_exact(self):
        result = extract_partial_inductance(stripe_grid())
        blocks = HierarchicalSparsifier(leaf_size=4).apply(result)
        assert blocks.kind == "L"
        assert len(blocks.blocks) == 1
        indices, matrix = blocks.blocks[0]
        assert indices == list(range(result.size))
        scale = np.max(np.abs(result.matrix))
        assert np.max(np.abs(matrix - result.matrix)) <= 1e-4 * scale

    def test_consumes_existing_operator(self):
        segments = stripe_grid()
        hier = extract_partial_inductance(
            segments, assembly="hierarchical", leaf_size=4
        )
        blocks = HierarchicalSparsifier().apply(hier)
        assert np.array_equal(blocks.blocks[0][1], hier.matrix)

    def test_name(self):
        assert HierarchicalSparsifier().name == "hierarchical"

    def test_traced_apply_works(self):
        result = extract_partial_inductance(stripe_grid(4, 2))
        blocks = traced_apply(HierarchicalSparsifier(leaf_size=4), result)
        assert blocks.num_segments == result.size


class TestSPDGuard:
    def test_fallback_on_failed_check(self):
        # A huge spd_tol makes the passivity check unsatisfiable, which
        # deterministically exercises the guard: the adapter must hand
        # back the *exact* dense matrix instead of the materialization.
        result = extract_partial_inductance(stripe_grid())
        sparsifier = HierarchicalSparsifier(leaf_size=4, spd_tol=1.0)
        blocks = sparsifier.apply(result)
        assert np.array_equal(blocks.blocks[0][1], result.matrix)

    def test_fallback_recorded_in_run_report(self):
        result = extract_partial_inductance(stripe_grid())
        report = RunReport()
        with activate(report):
            HierarchicalSparsifier(leaf_size=4, spd_tol=1.0).apply(result)
        assert len(report.downgrades) == 1
        event = report.downgrades[0]
        assert event.stage == "sparsify"
        assert "hierarchical -> exact" in event.detail
        assert "SPD" in event.detail

    def test_no_downgrade_on_clean_pass(self):
        result = extract_partial_inductance(stripe_grid())
        report = RunReport()
        with activate(report):
            HierarchicalSparsifier(leaf_size=4).apply(result)
        assert report.downgrades == []

    def test_fallback_from_hierarchical_result_reextracts_exact(self):
        segments = stripe_grid()
        hier = extract_partial_inductance(
            segments, assembly="hierarchical", leaf_size=4
        )
        exact = extract_partial_inductance(segments)
        blocks = HierarchicalSparsifier(spd_tol=1.0).apply(hier)
        assert np.array_equal(blocks.blocks[0][1], exact.matrix)


class TestScenarioFactory:
    def test_registered_in_factories(self):
        from repro.scenarios.spec import SPARSIFIER_FACTORIES

        factory = SPARSIFIER_FACTORIES["hierarchical"]
        assert isinstance(factory(), HierarchicalSparsifier)

    def test_scenario_accepts_hierarchical(self):
        from repro.scenarios.spec import Scenario

        sc = Scenario(sparsifier="hierarchical")
        assert sc.sparsifier == "hierarchical"
