"""Sharded sweeps: bit-identical to serial, checkpointed, resumable."""

import time

from repro.resilience import faults
from repro.resilience.faults import FaultSpec, inject_faults
from repro.resilience.supervisor import SupervisorConfig
from repro.scenarios.runner import evaluate_scenario
from repro.scenarios.scheduler import SweepResult, run_sweep
from repro.scenarios.spec import Scenario, SweepSpec
from repro.scenarios.store import ResultStore


def small_spec(name="sched"):
    # 2 variants x 2 sparsifiers x 2 lengths = 8 cheap scenarios.
    return SweepSpec(
        name=name,
        grid={
            "variant": ["baseline", "shielded"],
            "sparsifier": ["none", "truncation"],
            "length": [100e-6, 150e-6],
        },
        defaults={"t_stop": 0.6e-9},
    )


class TestShardedEqualsSerial:
    def test_two_workers_bit_identical(self):
        spec = small_spec()
        with inject_faults():
            serial = run_sweep(spec, workers=1)
            sharded = run_sweep(spec, workers=2)
        assert serial.records == sharded.records
        assert serial.ok == sharded.ok == 8

    def test_chunk_size_does_not_change_results(self):
        spec = small_spec()
        with inject_faults():
            serial = run_sweep(spec, workers=1)
            fine = run_sweep(spec, workers=2, chunk=1)
        assert serial.records == fine.records

    def test_explicit_scenario_list(self):
        scenarios = [
            Scenario(variant="baseline", length=100e-6, t_stop=0.6e-9),
            Scenario(variant="shielded", length=100e-6, t_stop=0.6e-9),
        ]
        with inject_faults():
            result = run_sweep(scenarios, workers=1)
        assert [r["id"] for r in result.records] == [
            sc.scenario_id for sc in scenarios
        ]

    def test_records_follow_grid_order(self):
        spec = small_spec()
        with inject_faults():
            result = run_sweep(spec, workers=2)
        assert [r["id"] for r in result.records] == [
            sc.scenario_id for sc in spec.expand()
        ]


class TestPoolDegradation:
    def test_pool_fault_degrades_to_serial(self):
        spec = small_spec()
        with inject_faults():
            want = run_sweep(spec, workers=1)
        with inject_faults(FaultSpec("sweep.pool", "raise", probability=1.0)):
            got = run_sweep(spec, workers=2)
        assert got.records == want.records
        downgrades = [e for e in got.report.events if e.kind == "downgrade"]
        assert downgrades
        assert "pool" in downgrades[0].detail


class TestCheckpointAndResume:
    def test_second_run_resumes_everything(self, tmp_path):
        spec = small_spec()
        store = ResultStore(tmp_path)
        with inject_faults():
            first = run_sweep(spec, store=store, workers=1)
            second = run_sweep(spec, store=store, workers=1)
        assert first.resumed == 0 and first.computed == 8
        assert second.resumed == 8 and second.computed == 0
        assert second.records == first.records
        resumes = [e for e in second.report.events if e.kind == "resume"]
        assert resumes and "8/8" in resumes[0].detail

    def test_sharded_run_resumes_from_serial_store(self, tmp_path):
        spec = small_spec()
        store = ResultStore(tmp_path)
        with inject_faults():
            run_sweep(spec, store=store, workers=1)
            second = run_sweep(spec, store=store, workers=2)
        assert second.resumed == 8 and second.computed == 0

    def test_corrupt_record_is_recomputed(self, tmp_path):
        spec = small_spec()
        store = ResultStore(tmp_path)
        with inject_faults():
            first = run_sweep(spec, store=store, workers=1)
            victim = spec.expand()[3].scenario_id
            store.path_for(victim).write_text("{broken")
            second = run_sweep(spec, store=store, workers=1)
        assert second.resumed == 7 and second.computed == 1
        assert second.records == first.records
        # the recomputed record was re-persisted
        assert store.load(victim) == first.records[3]

    def test_no_resume_recomputes(self, tmp_path):
        spec = small_spec()
        store = ResultStore(tmp_path)
        with inject_faults():
            run_sweep(spec, store=store, workers=1)
            again = run_sweep(spec, store=store, workers=1, resume=False)
        assert again.resumed == 0 and again.computed == 8

    def test_partial_store_resumes_only_completed(self, tmp_path):
        spec = small_spec()
        scenarios = spec.expand()
        store = ResultStore(tmp_path)
        with inject_faults():
            store.store(evaluate_scenario(scenarios[0]))
            store.store(evaluate_scenario(scenarios[5]))
            result = run_sweep(spec, store=store, workers=1)
        assert result.resumed == 2 and result.computed == 6
        assert len(store) == 8


class TestSupervisedQuarantine:
    def test_hang_storm_quarantines_every_scenario(
        self, tmp_path, monkeypatch
    ):
        # Every worker shard hangs; the watchdog kills each one at its
        # deadline and, with no retries allowed, single-scenario shards
        # are quarantined as degraded records -- the sweep completes.
        def hang_always(site):
            if site == "sweep.worker":
                time.sleep(60.0)

        monkeypatch.setattr(faults, "maybe_disrupt", hang_always)
        spec = small_spec(name="storm")
        store = ResultStore(tmp_path)
        with inject_faults():
            result = run_sweep(
                spec, store=store, workers=4, chunk=1,
                config=SupervisorConfig(
                    deadline=0.4, heartbeat=0.02, max_chunk_retries=0,
                    max_pool_restarts=50, backoff_base=0.01,
                ),
            )
        assert result.quarantined == 8 and result.ok == 0
        assert [r["id"] for r in result.records] == [
            sc.scenario_id for sc in spec.expand()
        ]
        for record in result.records:
            assert record["status"] == "quarantined"
            assert record["error"]
            assert any(
                note["kind"] == "quarantine" for note in record["notes"]
            )
        assert len(result.report.quarantines) == 8
        assert result.report.timeouts
        # Degraded records are persisted like any other.
        assert len(store) == 8


class TestSweepResultCounters:
    def test_quarantined_property_counts_records(self):
        result = SweepResult(records=[
            {"status": "ok"}, {"status": "quarantined"},
            {"status": "failed"}, {"status": "quarantined"},
        ])
        assert result.quarantined == 2
        assert result.ok == 1 and result.failed == 1

    def test_failed_scenarios_are_counted_not_raised(self, monkeypatch):
        import repro.scenarios.scheduler as sched

        def fake_eval(sc):
            ok = sc.variant == "baseline"
            return {
                "id": sc.scenario_id,
                "params": sc.params(),
                "status": "ok" if ok else "failed",
                "metrics": {},
                "notes": [],
            }

        monkeypatch.setattr(sched, "evaluate_scenario", fake_eval)
        spec = SweepSpec(
            name="t", grid={"variant": ["baseline", "shielded"]}
        )
        result = run_sweep(spec, workers=1)
        assert result.ok == 1 and result.failed == 1
