"""Sweep specs, grid expansion, and content-addressed scenario ids."""

import json

import pytest

from repro.scenarios.spec import (
    SPARSIFIER_FACTORIES,
    Scenario,
    SweepSpec,
    load_sweep_spec,
    smoke_spec,
)
from repro.scenarios.variants import VARIANTS


class TestScenario:
    def test_id_is_stable(self):
        a = Scenario(variant="baseline", length=200e-6)
        b = Scenario(variant="baseline", length=200e-6)
        assert a.scenario_id == b.scenario_id

    def test_id_changes_with_any_parameter(self):
        base = Scenario()
        assert Scenario(variant="shielded").scenario_id != base.scenario_id
        assert Scenario(sparsifier="shell").scenario_id != base.scenario_id
        assert Scenario(length=401e-6).scenario_id != base.scenario_id
        assert Scenario(dt=3e-12).scenario_id != base.scenario_id

    def test_id_is_bit_exact_over_floats(self):
        # A float perturbation far below any decimal rendering still
        # changes the address (struct packing, not repr).
        import numpy as np

        eps = np.nextafter(400e-6, 1.0)
        assert Scenario(length=eps).scenario_id != Scenario().scenario_id

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError, match="unknown variant"):
            Scenario(variant="bogus")

    def test_unknown_sparsifier_rejected(self):
        with pytest.raises(ValueError, match="unknown sparsifier"):
            Scenario(sparsifier="bogus")

    def test_nonpositive_field_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            Scenario(length=0.0)
        with pytest.raises(ValueError, match="positive"):
            Scenario(frequency=-1e9)

    def test_dt_must_fit_horizon(self):
        with pytest.raises(ValueError, match="dt"):
            Scenario(dt=2e-9, t_stop=1e-9)

    def test_params_roundtrip(self):
        sc = Scenario(variant="shielded", sparsifier="halo")
        params = sc.params()
        assert Scenario(**params) == sc


class TestSweepSpec:
    def test_expand_is_deterministic_and_sorted(self):
        spec = SweepSpec(
            name="t",
            grid={"variant": ["shielded", "baseline"], "length": [2e-4, 1e-4]},
        )
        scenarios = spec.expand()
        assert len(scenarios) == len(spec) == 4
        assert scenarios == spec.expand()
        # axes iterate sorted (length before variant), values in given order
        assert [(s.length, s.variant) for s in scenarios] == [
            (2e-4, "shielded"), (2e-4, "baseline"),
            (1e-4, "shielded"), (1e-4, "baseline"),
        ]

    def test_defaults_apply_to_every_scenario(self):
        spec = SweepSpec(
            name="t", grid={"variant": ["baseline"]},
            defaults={"frequency": 5e9},
        )
        assert spec.expand()[0].frequency == 5e9

    def test_unknown_grid_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario fields"):
            SweepSpec(name="t", grid={"wavelength": [1.0]})

    def test_unknown_default_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario fields"):
            SweepSpec(name="t", grid={"variant": ["baseline"]},
                      defaults={"color": "red"})

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            SweepSpec(name="t", grid={"variant": []})

    def test_needs_name(self):
        with pytest.raises(ValueError, match="name"):
            SweepSpec(name="", grid={"variant": ["baseline"]})


class TestLoadSweepSpec:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({
            "name": "lengths",
            "defaults": {"frequency": 1e9},
            "grid": {"variant": ["baseline"], "length": [1e-4, 2e-4]},
        }))
        spec = load_sweep_spec(path)
        assert spec.name == "lengths"
        assert len(spec.expand()) == 2
        assert spec.expand()[0].frequency == 1e9

    def test_missing_file(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read"):
            load_sweep_spec(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="cannot read"):
            load_sweep_spec(path)

    def test_missing_grid(self, tmp_path):
        path = tmp_path / "no_grid.json"
        path.write_text(json.dumps({"name": "x"}))
        with pytest.raises(ValueError, match="grid"):
            load_sweep_spec(path)


class TestSmokeSpec:
    def test_four_valid_scenarios(self):
        scenarios = smoke_spec().expand()
        assert len(scenarios) == 4
        assert {s.variant for s in scenarios} == {"baseline", "shielded"}
        assert {s.sparsifier for s in scenarios} == {"none", "truncation"}


class TestVocabularies:
    def test_sparsifier_factories_build(self):
        for name, factory in SPARSIFIER_FACTORIES.items():
            if factory is None:
                assert name == "none"
            else:
                assert factory().name  # constructible with defaults

    def test_every_variant_is_a_valid_axis_value(self):
        for name in VARIANTS:
            Scenario(variant=name)  # does not raise
