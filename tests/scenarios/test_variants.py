"""Every design variant runs end to end through loop extraction.

Satellite coverage: each geometry the sweep engine can build must
produce a finite, physical loop impedance and a passivity-clean partial
inductance matrix -- no variant is allowed to rot into a
NaN/singular-matrix generator without a test catching it.
"""

import numpy as np
import pytest

from repro.extraction.partial_matrix import extract_partial_inductance
from repro.loop.extractor import LoopPort, extract_loop_impedance
from repro.resilience.faults import inject_faults
from repro.scenarios.runner import MAX_SEGMENT_LENGTH, _inplane_segments
from repro.scenarios.variants import VARIANTS, build_variant
from repro.sparsify.stability import is_positive_definite

LENGTH = 100e-6
FREQ = 2e9


@pytest.mark.parametrize("name", sorted(VARIANTS))
class TestEveryVariant:
    def test_builds_layout_and_port(self, name):
        layout, port = build_variant(name, LENGTH)
        assert layout.segments, f"{name}: empty layout"
        assert isinstance(port, LoopPort)

    def test_loop_extraction_is_finite_and_physical(self, name):
        layout, port = build_variant(name, LENGTH)
        with inject_faults():
            result = extract_loop_impedance(
                layout, port, [FREQ],
                max_segment_length=MAX_SEGMENT_LENGTH, workers=1,
            )
        z = result.at(FREQ)
        assert np.isfinite(z.real) and np.isfinite(z.imag), name
        assert z.real > 0, f"{name}: non-positive loop resistance"
        assert z.imag > 0, f"{name}: non-inductive loop at {FREQ:g} Hz"

    def test_partial_inductance_is_passivity_clean(self, name):
        layout, _ = build_variant(name, LENGTH)
        extraction = extract_partial_inductance(
            _inplane_segments(layout, MAX_SEGMENT_LENGTH)
        )
        dense = extraction.matrix
        assert np.all(np.isfinite(dense)), name
        assert is_positive_definite(dense), (
            f"{name}: partial inductance matrix not positive definite"
        )


class TestBuildVariant:
    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown variant"):
            build_variant("moebius", LENGTH)

    def test_length_is_respected(self):
        short, _ = build_variant("baseline", 50e-6)
        long, _ = build_variant("baseline", 200e-6)
        assert max(s.length for s in long.segments) > max(
            s.length for s in short.segments
        )
