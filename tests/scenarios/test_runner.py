"""Single-scenario evaluation: records, determinism, failure capture."""

import math

import numpy as np
import pytest

from repro.resilience.faults import inject_faults
from repro.scenarios import runner as runner_mod
from repro.scenarios.runner import evaluate_scenario
from repro.scenarios.spec import Scenario

CHEAP = dict(length=100e-6, t_stop=0.6e-9)


class TestEvaluateScenario:
    def test_ok_record_shape(self):
        with inject_faults():
            record = evaluate_scenario(Scenario(variant="baseline", **CHEAP))
        assert record["status"] == "ok"
        assert "error" not in record
        assert record["id"] == Scenario(variant="baseline", **CHEAP).scenario_id
        m = record["metrics"]
        assert m["num_filaments"] > 0
        assert m["loop_resistance"] > 0
        assert m["loop_inductance"] > 0
        assert m["delay"] > 0
        assert m["overshoot"] >= 0
        assert all(
            np.isfinite(v) for v in m.values() if isinstance(v, float)
        )

    def test_record_is_deterministic(self):
        sc = Scenario(variant="shielded", sparsifier="truncation", **CHEAP)
        with inject_faults():
            assert evaluate_scenario(sc) == evaluate_scenario(sc)

    def test_sparsifier_stage_reports_passivity(self):
        sc = Scenario(variant="shielded", sparsifier="truncation", **CHEAP)
        with inject_faults():
            record = evaluate_scenario(sc)
        m = record["metrics"]
        assert m["sparsify_kind"] == "L"
        assert 0 < m["sparsify_mutuals_kept"] <= m["sparsify_mutuals_total"]
        assert "sparsify_positive_definite" in m

    def test_none_sparsifier_skips_stage(self):
        with inject_faults():
            record = evaluate_scenario(Scenario(variant="baseline", **CHEAP))
        assert not any(k.startswith("sparsify") for k in record["metrics"])

    def test_build_failure_is_data_not_abort(self, monkeypatch):
        def boom(name, length):
            raise RuntimeError("geometry exploded")

        monkeypatch.setattr(runner_mod, "build_variant", boom)
        record = evaluate_scenario(Scenario(variant="baseline", **CHEAP))
        assert record["status"] == "failed"
        assert "geometry exploded" in record["error"]
        assert record["metrics"] == {}

    def test_sparsifier_refusal_degrades_not_fails(self, monkeypatch):
        def refuse(sparsifier, extraction):
            raise ValueError("matrix refused")

        monkeypatch.setattr(runner_mod, "traced_apply", refuse)
        sc = Scenario(variant="baseline", sparsifier="truncation", **CHEAP)
        with inject_faults():
            record = evaluate_scenario(sc)
        assert record["status"] == "ok"
        assert record["metrics"]["sparsify_degraded"] is True
        downgrades = [n for n in record["notes"] if n["kind"] == "downgrade"]
        assert downgrades and "matrix refused" in downgrades[0]["detail"]
        # the transient metrics still landed
        assert record["metrics"]["delay"] > 0

    def test_loop_values_match_direct_extraction(self):
        from repro.loop.extractor import extract_loop_impedance
        from repro.scenarios.runner import MAX_SEGMENT_LENGTH
        from repro.scenarios.variants import build_variant

        sc = Scenario(variant="baseline", **CHEAP)
        with inject_faults():
            record = evaluate_scenario(sc)
            layout, port = build_variant(sc.variant, sc.length)
            res = extract_loop_impedance(
                layout, port, [sc.frequency],
                max_segment_length=MAX_SEGMENT_LENGTH, workers=1,
            )
        z = res.at(sc.frequency)
        omega = 2 * math.pi * sc.frequency
        assert record["metrics"]["loop_resistance"] == pytest.approx(z.real)
        assert record["metrics"]["loop_inductance"] == pytest.approx(
            z.imag / omega
        )
