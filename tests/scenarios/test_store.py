"""Content-addressed result store: atomic writes, resume semantics."""

from repro.scenarios.store import ResultStore


def make_record(sid="abc123", status="ok"):
    return {
        "id": sid,
        "params": {"variant": "baseline", "length": 1e-4},
        "status": status,
        "metrics": {"delay": 1e-12},
        "notes": [],
    }


class TestResultStore:
    def test_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        record = make_record()
        path = store.store(record)
        assert path.name == "scenario_abc123.json"
        assert store.load("abc123") == record

    def test_creates_directory(self, tmp_path):
        store = ResultStore(tmp_path / "a" / "b")
        assert store.directory.is_dir()

    def test_missing_record_is_none(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.load("nothere") is None

    def test_corrupt_record_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        store.path_for("bad1").write_text("{truncated")
        assert store.load("bad1") is None

    def test_mismatched_id_is_a_miss(self, tmp_path):
        # A record copied under the wrong filename must not be served.
        store = ResultStore(tmp_path)
        store.path_for("other").write_text('{"id": "abc123"}')
        assert store.load("other") is None

    def test_completed_lists_ids(self, tmp_path):
        store = ResultStore(tmp_path)
        store.store(make_record("id1"))
        store.store(make_record("id2"))
        assert store.completed() == {"id1", "id2"}
        assert len(store) == 2

    def test_overwrite_replaces(self, tmp_path):
        store = ResultStore(tmp_path)
        store.store(make_record(status="failed"))
        store.store(make_record(status="ok"))
        assert store.load("abc123")["status"] == "ok"
        assert len(store) == 1

    def test_no_temp_files_left_behind(self, tmp_path):
        store = ResultStore(tmp_path)
        store.store(make_record())
        assert list(tmp_path.glob("*.tmp")) == []
