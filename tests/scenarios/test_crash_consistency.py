"""Crash consistency: SIGKILL a worker / the parent, resume bit-identically.

Satellite of the supervised-execution runtime: a sweep that loses a
worker process mid-flight must still produce records bit-identical to a
serial run, and a sweep whose *parent* is SIGKILLed mid-batch must
resume from the per-scenario store and converge to the same records.
"""

import os
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.resilience import faults
from repro.resilience.faults import inject_faults
from repro.resilience.supervisor import SupervisorConfig
from repro.scenarios.scheduler import run_sweep
from repro.scenarios.store import ResultStore

from tests.scenarios.test_scheduler import small_spec

REPO_ROOT = Path(__file__).resolve().parents[2]


def _clean_env():
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    for name in (
        "REPRO_FAULTS", "REPRO_WORKERS", "REPRO_DEADLINE",
        "REPRO_TIME_BUDGET", "REPRO_WORKER_RLIMIT_MB",
    ):
        env.pop(name, None)
    return env


class TestWorkerKill:
    def test_killed_worker_recovers_bit_identical(
        self, tmp_path, monkeypatch
    ):
        marker = tmp_path / "killed"

        def crash_once(site):
            if site != "sweep.worker":
                return
            try:
                fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                return
            os.close(fd)
            time.sleep(0.3)  # let the watchdog stamp the shard as running
            os._exit(13)

        monkeypatch.setattr(faults, "maybe_disrupt", crash_once)
        spec = small_spec(name="wkill")
        store = ResultStore(tmp_path / "store")
        with inject_faults():
            survived = run_sweep(
                spec, store=store, workers=2, chunk=1,
                config=SupervisorConfig(
                    heartbeat=0.02, backoff_base=0.01, max_pool_restarts=5,
                ),
            )
        assert marker.exists()  # the fault really fired
        monkeypatch.setattr(faults, "maybe_disrupt", lambda site: None)
        with inject_faults():
            want = run_sweep(small_spec(name="wkill"), workers=1)
        assert survived.records == want.records
        assert survived.ok == 8 and survived.quarantined == 0
        assert survived.report.by_kind("worker-lost")
        assert survived.report.by_kind("restart")
        # The store is crash-consistent too: a fresh run resumes all 8.
        with inject_faults():
            resumed = run_sweep(small_spec(name="wkill"), store=store)
        assert resumed.resumed == 8 and resumed.computed == 0
        assert resumed.records == want.records


DRIVER = """
    import time

    import repro.scenarios.scheduler as sched
    from repro.scenarios.spec import SweepSpec
    from repro.scenarios.store import ResultStore

    real = sched.evaluate_scenario

    def slow(sc):
        time.sleep(0.35)  # widen the kill window; records are unchanged
        return real(sc)

    sched.evaluate_scenario = slow  # forked workers inherit the patch

    spec = SweepSpec(
        name="pkill",
        grid={
            "variant": ["baseline", "shielded"],
            "sparsifier": ["none", "truncation"],
            "length": [100e-6, 150e-6],
        },
        defaults={"t_stop": 0.6e-9},
    )
    sched.run_sweep(spec, store=ResultStore(r"%s"), workers=2, chunk=1)
    print("SWEEP-FINISHED")
"""


class TestParentKill:
    def test_sigkilled_parent_resumes_bit_identical(self, tmp_path):
        store_dir = tmp_path / "store"
        driver = tmp_path / "driver.py"
        driver.write_text(textwrap.dedent(DRIVER % store_dir))
        proc = subprocess.Popen(
            [sys.executable, str(driver)], env=_clean_env(),
            cwd=str(REPO_ROOT), stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        try:
            # SIGKILL the parent once some -- but not all -- records have
            # been persisted by its finish() callback.
            deadline = time.monotonic() + 120.0
            while time.monotonic() < deadline:
                done = len(ResultStore(store_dir).completed())
                if done >= 2:
                    break
                if proc.poll() is not None:
                    pytest.fail(
                        "driver exited before it could be killed: "
                        + proc.stderr.read().decode()
                    )
                time.sleep(0.02)
            else:
                pytest.fail("driver never persisted a record")
            proc.kill()
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
            proc.stdout.close()
            proc.stderr.close()

        store = ResultStore(store_dir)
        survivors = len(store.completed())
        assert 1 <= survivors < 8
        with inject_faults():
            resumed = run_sweep(
                small_spec(name="pkill"), store=store, workers=1
            )
            want = run_sweep(small_spec(name="pkill"), workers=1)
        assert resumed.resumed == survivors
        assert resumed.computed == 8 - survivors
        assert resumed.records == want.records
        assert resumed.report.by_kind("resume")
