"""Parallel frequency sweeps: bit-identical to serial, resilient to pool loss."""

import numpy as np
import pytest

from repro.circuit.ac import ac_analysis, ac_impedance
from repro.circuit.netlist import GROUND, Circuit
from repro.loop.extractor import LoopPort, extract_loop_impedance
from repro.perf.parallel import chunk_indices, explicit_workers, worker_count
from repro.resilience.checkpoint import CheckpointConfig, load_checkpoint
from repro.resilience.faults import FaultSpec, InjectedFault, inject_faults
from repro.resilience.policy import ResiliencePolicy

#: First fault is fatal: what the kill/resume scenario needs.
BRITTLE = ResiliencePolicy(
    escalation="safe", max_retries=0, max_step_halvings=0
)


def make_port(ports):
    return LoopPort(
        signal=ports["driver"],
        reference=ports["gnd_driver"],
        short_signal=ports["receiver"],
        short_reference=ports["gnd_receiver"],
    )


def rlc_ladder(n=6):
    c = Circuit("ladder")
    prev = "p"
    for k in range(n):
        mid = f"m{k}"
        nxt = f"n{k}"
        c.add_resistor(f"r{k}", prev, mid, 3.0 + k)
        c.add_inductor(f"l{k}", mid, nxt, 1e-9)
        c.add_capacitor(f"c{k}", nxt, GROUND, 0.2e-12)
        prev = nxt
    c.add_resistor("rterm", prev, GROUND, 50.0)
    return c


class TestChunking:
    def test_covers_all_indices_contiguously(self):
        chunks = chunk_indices(np.arange(17), workers=3)
        flat = np.concatenate(chunks)
        assert np.array_equal(flat, np.arange(17))

    def test_explicit_chunk_size(self):
        chunks = chunk_indices(np.arange(10), workers=2, chunk=4)
        assert [len(c) for c in chunks] == [4, 4, 2]

    def test_empty_indices(self):
        assert chunk_indices(np.array([], dtype=int), workers=4) == []

    def test_rejects_bad_chunk(self):
        with pytest.raises(ValueError):
            chunk_indices(np.arange(4), workers=1, chunk=0)


class TestWorkerCount:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert worker_count(3) == 3

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert worker_count() == 5
        assert explicit_workers()

    def test_default_is_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        import os

        assert worker_count() == (os.cpu_count() or 1)
        assert not explicit_workers()
        assert explicit_workers(2)

    def test_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ValueError):
            worker_count()
        with pytest.raises(ValueError):
            worker_count(0)


class TestACParallelEqualsSerial:
    freqs = np.logspace(6, 10, 9)

    def test_ac_impedance_bit_identical(self):
        with inject_faults():
            serial = ac_impedance(rlc_ladder(), self.freqs, ("p", GROUND))
            parallel = ac_impedance(
                rlc_ladder(), self.freqs, ("p", GROUND), workers=3
            )
        assert np.array_equal(serial, parallel)

    def test_ac_analysis_bit_identical(self):
        stimulus = {}
        circuit = rlc_ladder()
        circuit.add_isource("iin", "p", GROUND, 0.0)
        stimulus = {"iin": 1.0 + 0.0j}
        with inject_faults():
            serial = ac_analysis(circuit, self.freqs, stimulus)
            parallel = ac_analysis(circuit, self.freqs, stimulus, workers=2)
        assert np.array_equal(serial.x, parallel.x)

    def test_single_point_stays_serial(self):
        # One frequency cannot be fanned out; must not hang or fork.
        z1 = ac_impedance(rlc_ladder(), [1e9], ("p", GROUND), workers=4)
        z2 = ac_impedance(rlc_ladder(), [1e9], ("p", GROUND), workers=1)
        assert np.array_equal(z1, z2)


class TestLoopParallelEqualsSerial:
    def test_figure3_sweep_bit_identical(self, signal_grid_structure):
        layout, ports = signal_grid_structure
        freqs = np.logspace(7, 10.7, 8)
        with inject_faults():
            serial = extract_loop_impedance(
                layout, make_port(ports), freqs,
                max_segment_length=150e-6, workers=1,
            )
            parallel = extract_loop_impedance(
                layout, make_port(ports), freqs,
                max_segment_length=150e-6, workers=3,
            )
        assert np.array_equal(serial.impedance, parallel.impedance)

    def test_worker_count_does_not_change_results(self,
                                                  signal_grid_structure):
        layout, ports = signal_grid_structure
        freqs = np.logspace(8, 10, 5)
        with inject_faults():
            results = [
                extract_loop_impedance(
                    layout, make_port(ports), freqs,
                    max_segment_length=150e-6, workers=w,
                ).impedance
                for w in (1, 2, 4)
            ]
        assert np.array_equal(results[0], results[1])
        assert np.array_equal(results[0], results[2])


class TestPoolDegradation:
    def test_pool_fault_degrades_to_serial(self, signal_grid_structure):
        layout, ports = signal_grid_structure
        freqs = np.logspace(8, 10, 5)
        with inject_faults():
            reference = extract_loop_impedance(
                layout, make_port(ports), freqs,
                max_segment_length=150e-6, workers=1,
            )
        with inject_faults(FaultSpec("perf.pool", "raise", probability=1.0)):
            degraded = extract_loop_impedance(
                layout, make_port(ports), freqs,
                max_segment_length=150e-6, workers=3,
            )
        assert np.array_equal(reference.impedance, degraded.impedance)
        downgrades = degraded.report.by_kind("downgrade")
        assert downgrades
        assert "serial" in downgrades[0].detail


class TestParallelCheckpointing:
    def test_parallel_sweep_writes_periodic_checkpoints(
        self, tmp_path, signal_grid_structure
    ):
        layout, ports = signal_grid_structure
        freqs = np.logspace(8, 10, 6)
        path = tmp_path / "parallel.ckpt"
        with inject_faults():
            result = extract_loop_impedance(
                layout, make_port(ports), freqs,
                max_segment_length=150e-6, workers=2,
                checkpoint=CheckpointConfig(path, interval=2),
            )
        # Completed checkpoints are cleaned up; the report logged them.
        assert not path.exists()
        assert result.report.by_kind("checkpoint")

    def test_resume_skips_completed_points_then_matches_serial(
        self, tmp_path, signal_grid_structure
    ):
        layout, ports = signal_grid_structure
        freqs = np.logspace(8, 10, 6)
        with inject_faults():
            baseline = extract_loop_impedance(
                layout, make_port(ports), freqs,
                max_segment_length=150e-6, workers=1, policy=BRITTLE,
            )
        # Kill a serial run mid-sweep to leave a partial checkpoint...
        path = tmp_path / "resume.ckpt"
        with inject_faults(FaultSpec("loop.freq", "raise", after=3)):
            with pytest.raises(InjectedFault):
                extract_loop_impedance(
                    layout, make_port(ports), freqs,
                    max_segment_length=150e-6, workers=1, policy=BRITTLE,
                    checkpoint=CheckpointConfig(path, interval=2),
                )
        snap = load_checkpoint(path)
        assert 0 < int(snap.arrays["done"].sum()) < len(freqs)
        # ...then finish it with the parallel path.
        with inject_faults():
            resumed = extract_loop_impedance(
                layout, make_port(ports), freqs,
                max_segment_length=150e-6, workers=2, policy=BRITTLE,
                checkpoint=CheckpointConfig(path, interval=2),
            )
        assert resumed.report.by_kind("resume")
        assert np.array_equal(resumed.impedance, baseline.impedance)
        assert not path.exists()
