"""Parallel frequency sweeps: bit-identical to serial, resilient to pool loss."""

import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.circuit.ac import ac_analysis, ac_impedance
from repro.circuit.netlist import GROUND, Circuit
from repro.loop.extractor import LoopPort, extract_loop_impedance
from repro.perf.parallel import (
    SweepSpec,
    chunk_indices,
    explicit_workers,
    parallel_sweep,
    worker_count,
)
from repro.resilience import faults
from repro.resilience.checkpoint import CheckpointConfig, load_checkpoint
from repro.resilience.faults import FaultSpec, InjectedFault, inject_faults
from repro.resilience.policy import ResiliencePolicy
from repro.resilience.report import RunReport
from repro.resilience.supervisor import SupervisorConfig

#: First fault is fatal: what the kill/resume scenario needs.
BRITTLE = ResiliencePolicy(
    escalation="safe", max_retries=0, max_step_halvings=0
)


def make_port(ports):
    return LoopPort(
        signal=ports["driver"],
        reference=ports["gnd_driver"],
        short_signal=ports["receiver"],
        short_reference=ports["gnd_receiver"],
    )


def rlc_ladder(n=6):
    c = Circuit("ladder")
    prev = "p"
    for k in range(n):
        mid = f"m{k}"
        nxt = f"n{k}"
        c.add_resistor(f"r{k}", prev, mid, 3.0 + k)
        c.add_inductor(f"l{k}", mid, nxt, 1e-9)
        c.add_capacitor(f"c{k}", nxt, GROUND, 0.2e-12)
        prev = nxt
    c.add_resistor("rterm", prev, GROUND, 50.0)
    return c


class TestChunking:
    def test_covers_all_indices_contiguously(self):
        chunks = chunk_indices(np.arange(17), workers=3)
        flat = np.concatenate(chunks)
        assert np.array_equal(flat, np.arange(17))

    def test_explicit_chunk_size(self):
        chunks = chunk_indices(np.arange(10), workers=2, chunk=4)
        assert [len(c) for c in chunks] == [4, 4, 2]

    def test_empty_indices(self):
        assert chunk_indices(np.array([], dtype=int), workers=4) == []

    def test_rejects_bad_chunk(self):
        with pytest.raises(ValueError):
            chunk_indices(np.arange(4), workers=1, chunk=0)


class TestWorkerCount:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert worker_count(3) == 3

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert worker_count() == 5
        assert explicit_workers()

    def test_default_is_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        import os

        assert worker_count() == (os.cpu_count() or 1)
        assert not explicit_workers()
        assert explicit_workers(2)

    def test_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ValueError):
            worker_count()
        with pytest.raises(ValueError):
            worker_count(0)

    def test_errors_name_the_offending_value_and_source(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ValueError, match="REPRO_WORKERS.*'many'"):
            worker_count()
        monkeypatch.setenv("REPRO_WORKERS", "0")
        with pytest.raises(ValueError, match=r"REPRO_WORKERS='0'"):
            worker_count()
        monkeypatch.delenv("REPRO_WORKERS")
        with pytest.raises(ValueError, match=r"workers=-2"):
            worker_count(-2)
        with pytest.raises(ValueError, match="'three'"):
            worker_count("three")

    def test_explicit_workers_validates_the_env_at_the_gate(
        self, monkeypatch
    ):
        monkeypatch.setenv("REPRO_WORKERS", "a few")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            explicit_workers()


class TestACParallelEqualsSerial:
    freqs = np.logspace(6, 10, 9)

    def test_ac_impedance_bit_identical(self):
        with inject_faults():
            serial = ac_impedance(rlc_ladder(), self.freqs, ("p", GROUND))
            parallel = ac_impedance(
                rlc_ladder(), self.freqs, ("p", GROUND), workers=3
            )
        assert np.array_equal(serial, parallel)

    def test_ac_analysis_bit_identical(self):
        stimulus = {}
        circuit = rlc_ladder()
        circuit.add_isource("iin", "p", GROUND, 0.0)
        stimulus = {"iin": 1.0 + 0.0j}
        with inject_faults():
            serial = ac_analysis(circuit, self.freqs, stimulus)
            parallel = ac_analysis(circuit, self.freqs, stimulus, workers=2)
        assert np.array_equal(serial.x, parallel.x)

    def test_single_point_stays_serial(self):
        # One frequency cannot be fanned out; must not hang or fork.
        z1 = ac_impedance(rlc_ladder(), [1e9], ("p", GROUND), workers=4)
        z2 = ac_impedance(rlc_ladder(), [1e9], ("p", GROUND), workers=1)
        assert np.array_equal(z1, z2)


class TestLoopParallelEqualsSerial:
    def test_figure3_sweep_bit_identical(self, signal_grid_structure):
        layout, ports = signal_grid_structure
        freqs = np.logspace(7, 10.7, 8)
        with inject_faults():
            serial = extract_loop_impedance(
                layout, make_port(ports), freqs,
                max_segment_length=150e-6, workers=1,
            )
            parallel = extract_loop_impedance(
                layout, make_port(ports), freqs,
                max_segment_length=150e-6, workers=3,
            )
        assert np.array_equal(serial.impedance, parallel.impedance)

    def test_worker_count_does_not_change_results(self,
                                                  signal_grid_structure):
        layout, ports = signal_grid_structure
        freqs = np.logspace(8, 10, 5)
        with inject_faults():
            results = [
                extract_loop_impedance(
                    layout, make_port(ports), freqs,
                    max_segment_length=150e-6, workers=w,
                ).impedance
                for w in (1, 2, 4)
            ]
        assert np.array_equal(results[0], results[1])
        assert np.array_equal(results[0], results[2])


class TestPoolDegradation:
    def test_pool_fault_degrades_to_serial(self, signal_grid_structure):
        layout, ports = signal_grid_structure
        freqs = np.logspace(8, 10, 5)
        with inject_faults():
            reference = extract_loop_impedance(
                layout, make_port(ports), freqs,
                max_segment_length=150e-6, workers=1,
            )
        with inject_faults(FaultSpec("perf.pool", "raise", probability=1.0)):
            degraded = extract_loop_impedance(
                layout, make_port(ports), freqs,
                max_segment_length=150e-6, workers=3,
            )
        assert np.array_equal(reference.impedance, degraded.impedance)
        downgrades = degraded.report.by_kind("downgrade")
        assert downgrades
        assert "serial" in downgrades[0].detail


def _claim(path):
    """Atomically claim a sentinel file; True for exactly one claimant."""
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


class TestSupervisedSweep:
    """Deterministic worker faults recovered by the supervisor.

    ``faults.maybe_disrupt`` is monkeypatched with deterministic fakes;
    forked pool workers inherit the patched module, so the faults fire
    in the worker processes without any probabilistic injection.
    """

    freqs = np.linspace(1e6, 1e9, 8)

    @staticmethod
    def tiny():
        # (G + jwC) x = b with G = I, C = 0: port voltage 1.0 everywhere.
        return SweepSpec(
            g_matrix=np.eye(2),
            c_matrix=np.zeros((2, 2)),
            b=np.array([1.0, 0.0], dtype=complex),
            site="tiny",
            port=(0, -1),
        )

    def serial_reference(self):
        out = np.zeros(len(self.freqs), dtype=complex)
        with inject_faults():
            parallel_sweep(self.tiny(), self.freqs, out, workers=1)
        return out

    def test_crashed_worker_chunk_is_reissued(self, tmp_path, monkeypatch):
        marker = tmp_path / "crashed"

        def crash_once(site):
            if site == "perf.worker" and _claim(marker):
                time.sleep(0.3)
                os._exit(13)

        monkeypatch.setattr(faults, "maybe_disrupt", crash_once)
        report = RunReport()
        out = np.zeros(len(self.freqs), dtype=complex)
        with inject_faults():
            parallel_sweep(
                self.tiny(), self.freqs, out, workers=2, chunk=2,
                report=report,
                config=SupervisorConfig(heartbeat=0.02, backoff_base=0.01),
            )
        assert np.array_equal(out, self.serial_reference())
        assert report.by_kind("worker-lost")
        assert report.by_kind("restart")
        assert not report.quarantines

    def test_hung_worker_is_killed_via_env_deadline(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_DEADLINE", "0.5")
        monkeypatch.delenv("REPRO_TIME_BUDGET", raising=False)
        monkeypatch.delenv("REPRO_WORKER_RLIMIT_MB", raising=False)
        marker = tmp_path / "hung"

        def hang_once(site):
            if site == "perf.worker" and _claim(marker):
                time.sleep(60.0)

        monkeypatch.setattr(faults, "maybe_disrupt", hang_once)
        report = RunReport()
        out = np.zeros(len(self.freqs), dtype=complex)
        with inject_faults():
            # config=None: the deadline must arrive via REPRO_DEADLINE.
            parallel_sweep(
                self.tiny(), self.freqs, out, workers=2, chunk=2,
                report=report,
            )
        assert np.array_equal(out, self.serial_reference())
        assert report.timeouts
        assert not report.quarantines

    def test_poison_points_become_nan_rows_in_the_checkpoint_stream(
        self, monkeypatch
    ):
        def hang_always(site):
            if site == "perf.worker":
                time.sleep(60.0)

        monkeypatch.setattr(faults, "maybe_disrupt", hang_always)
        report = RunReport()
        freqs = np.linspace(1e6, 1e9, 4)
        out = np.zeros(len(freqs), dtype=complex)
        checkpointed = []
        with inject_faults():
            parallel_sweep(
                self.tiny(), freqs, out, workers=4, chunk=1,
                report=report,
                on_chunk=lambda idx: checkpointed.extend(int(i) for i in idx),
                config=SupervisorConfig(
                    deadline=0.4, heartbeat=0.02, max_chunk_retries=0,
                    max_pool_restarts=50, backoff_base=0.01,
                ),
            )
        assert np.all(np.isnan(out.real)) and np.all(np.isnan(out.imag))
        assert len(report.quarantines) == 4
        # Quarantined points still flow through the checkpoint hook.
        assert sorted(checkpointed) == [0, 1, 2, 3]


class TestParallelCheckpointing:
    def test_parallel_sweep_writes_periodic_checkpoints(
        self, tmp_path, signal_grid_structure
    ):
        layout, ports = signal_grid_structure
        freqs = np.logspace(8, 10, 6)
        path = tmp_path / "parallel.ckpt"
        with inject_faults():
            result = extract_loop_impedance(
                layout, make_port(ports), freqs,
                max_segment_length=150e-6, workers=2,
                checkpoint=CheckpointConfig(path, interval=2),
            )
        # Completed checkpoints are cleaned up; the report logged them.
        assert not path.exists()
        assert result.report.by_kind("checkpoint")

    def test_resume_skips_completed_points_then_matches_serial(
        self, tmp_path, signal_grid_structure
    ):
        layout, ports = signal_grid_structure
        freqs = np.logspace(8, 10, 6)
        with inject_faults():
            baseline = extract_loop_impedance(
                layout, make_port(ports), freqs,
                max_segment_length=150e-6, workers=1, policy=BRITTLE,
            )
        # Kill a serial run mid-sweep to leave a partial checkpoint...
        path = tmp_path / "resume.ckpt"
        with inject_faults(FaultSpec("loop.freq", "raise", after=3)):
            with pytest.raises(InjectedFault):
                extract_loop_impedance(
                    layout, make_port(ports), freqs,
                    max_segment_length=150e-6, workers=1, policy=BRITTLE,
                    checkpoint=CheckpointConfig(path, interval=2),
                )
        snap = load_checkpoint(path)
        assert 0 < int(snap.arrays["done"].sum()) < len(freqs)
        # ...then finish it with the parallel path.
        with inject_faults():
            resumed = extract_loop_impedance(
                layout, make_port(ports), freqs,
                max_segment_length=150e-6, workers=2, policy=BRITTLE,
                checkpoint=CheckpointConfig(path, interval=2),
            )
        assert resumed.report.by_kind("resume")
        assert np.array_equal(resumed.impedance, baseline.impedance)
        assert not path.exists()
