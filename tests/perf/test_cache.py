"""LRU cache, alpha quantization, and content-addressed extraction cache."""

import numpy as np
import pytest

from repro.perf.cache import (
    LRUCache,
    cache_stats,
    clear_cache,
    fingerprint_segments,
    load_matrix,
    quantize_alpha,
    store_matrix,
)


class TestLRUCache:
    def test_bounded_with_lru_eviction(self):
        cache = LRUCache(3)
        for k in "abcd":
            cache.put(k, k.upper())
        assert len(cache) == 3
        assert "a" not in cache  # oldest evicted
        assert cache.get("b") == "B"
        cache.put("e", "E")  # evicts "c" ("b" was just refreshed)
        assert "c" not in cache
        assert "b" in cache
        assert cache.evictions == 2

    def test_get_miss_returns_default(self):
        cache = LRUCache(2)
        assert cache.get("nope") is None
        assert cache.get("nope", 7) == 7

    def test_put_existing_key_updates_without_eviction(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        assert len(cache) == 2
        assert cache.get("a") == 10
        assert cache.evictions == 0

    def test_stats_and_clear(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["size"] == 1
        cache.clear()
        assert len(cache) == 0

    def test_rejects_nonpositive_maxsize(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_never_exceeds_maxsize_under_churn(self):
        cache = LRUCache(16)
        for k in range(1000):
            cache.put(float(k), object())
            assert len(cache) <= 16


class TestQuantizeAlpha:
    def test_merges_last_ulp_differences(self):
        h = 2.0 / 3e-12
        wobbled = h * (1.0 + 1e-15)
        assert h != wobbled
        assert quantize_alpha(h) == quantize_alpha(wobbled)

    def test_halve_double_roundtrip_maps_to_same_key(self):
        # The step-halving recovery path: h -> h/2 -> h again should reuse
        # the original factorization even after float round trips.
        h = 7.3e-12
        alpha = 2.0 / h
        roundtrip = 2.0 / (2.0 * (h * 0.5))
        assert quantize_alpha(alpha) == quantize_alpha(roundtrip)

    def test_distinguishes_genuinely_different_alphas(self):
        assert quantize_alpha(1e12) != quantize_alpha(2e12)
        assert quantize_alpha(1e12) != quantize_alpha(1.00001e12)

    def test_passthrough_for_zero_and_nonfinite(self):
        assert quantize_alpha(0.0) == 0.0
        assert quantize_alpha(float("inf")) == float("inf")
        assert np.isnan(quantize_alpha(float("nan")))


class TestFingerprint:
    def make_segments(self, **overrides):
        from repro.geometry.segment import Direction, Segment

        kwargs = dict(
            name="s0", net="clk", layer="M5", direction=Direction.X,
            origin=(0.0, 0.0, 1e-6), length=100e-6, width=2e-6,
            thickness=0.5e-6,
        )
        kwargs.update(overrides)
        return [Segment(**kwargs)]

    def test_same_geometry_same_digest(self):
        assert fingerprint_segments(self.make_segments()) == \
            fingerprint_segments(self.make_segments())

    def test_rename_does_not_change_digest(self):
        assert fingerprint_segments(self.make_segments()) == \
            fingerprint_segments(self.make_segments(name="renamed"))

    def test_geometry_edit_changes_digest(self):
        base = fingerprint_segments(self.make_segments())
        assert base != fingerprint_segments(self.make_segments(width=2.1e-6))
        assert base != fingerprint_segments(
            self.make_segments(origin=(1e-6, 0.0, 1e-6))
        )
        assert base != fingerprint_segments(self.make_segments(layer="M6"))

    def test_params_change_digest(self):
        segments = self.make_segments()
        assert fingerprint_segments(segments, {"close_ratio": 4.0}) != \
            fingerprint_segments(segments, {"close_ratio": 5.0})

    def test_param_order_is_irrelevant(self):
        segments = self.make_segments()
        assert fingerprint_segments(segments, {"a": 1.0, "b": 2.0}) == \
            fingerprint_segments(segments, {"b": 2.0, "a": 1.0})


@pytest.fixture()
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestMatrixStore:
    def test_memory_roundtrip_returns_equal_copy(self, fresh_cache):
        matrix = np.arange(9.0).reshape(3, 3)
        store_matrix("deadbeef", matrix)
        loaded = load_matrix("deadbeef")
        assert np.array_equal(loaded, matrix)
        loaded[0, 0] = 99.0  # mutating the copy must not corrupt the cache
        assert load_matrix("deadbeef")[0, 0] == 0.0

    def test_unknown_digest_misses(self, fresh_cache):
        assert load_matrix("0" * 64) is None

    def test_disk_tier_survives_memory_clear(self, fresh_cache,
                                             tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        matrix = np.eye(4) * 3.5
        store_matrix("cafe", matrix)
        assert (tmp_path / "partialL_cafe.npz").exists()
        clear_cache()  # drop the in-process tier
        loaded = load_matrix("cafe")
        assert np.array_equal(loaded, matrix)
        assert cache_stats()["disk_hits"] >= 1

    def test_corrupt_disk_file_is_a_miss(self, fresh_cache,
                                         tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        (tmp_path / "partialL_bad.npz").write_bytes(b"not an npz")
        assert load_matrix("bad") is None

    def test_env_kill_switch_disables_cache(self, fresh_cache, monkeypatch):
        monkeypatch.setenv("REPRO_EXTRACTION_CACHE", "off")
        store_matrix("feed", np.eye(2))
        assert load_matrix("feed") is None


class TestOperatorStore:
    @staticmethod
    def stripe_segments():
        from repro.geometry.segment import Direction, Segment

        segments = []
        for i in range(8):
            line = Segment(net=f"n{i}", layer="M6", direction=Direction.X,
                           origin=(0.0, i * 4e-6, 7e-6), length=160e-6,
                           width=1e-6, thickness=0.5e-6, name=f"s{i}")
            segments.extend(line.split(4))
        return segments

    def test_memory_roundtrip(self, fresh_cache):
        from repro.extraction.hierarchical import build_hierarchical_operator
        from repro.perf.cache import load_operator, store_operator

        operator = build_hierarchical_operator(
            self.stripe_segments(), leaf_size=4
        )
        store_operator("feedface", operator)
        assert load_operator("feedface") is operator

    def test_disk_tier_roundtrips_operator(self, fresh_cache, tmp_path,
                                           monkeypatch):
        from repro.extraction.hierarchical import build_hierarchical_operator
        from repro.perf.cache import (
            load_operator, operator_cache_stats, store_operator,
        )

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        operator = build_hierarchical_operator(
            self.stripe_segments(), leaf_size=4
        )
        store_operator("beefcafe", operator)
        assert (tmp_path / "partialL_hier_beefcafe.npz").exists()
        clear_cache()
        loaded = load_operator("beefcafe")
        assert loaded is not operator  # rebuilt from disk
        assert np.array_equal(loaded.to_dense(), operator.to_dense())
        assert loaded.params == operator.params
        assert loaded.aca_fallbacks == operator.aca_fallbacks
        assert operator_cache_stats()["disk_hits"] >= 1

    def test_corrupt_operator_file_is_a_miss(self, fresh_cache, tmp_path,
                                             monkeypatch):
        from repro.perf.cache import load_operator

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        (tmp_path / "partialL_hier_bad.npz").write_bytes(b"not an npz")
        assert load_operator("bad") is None

    def test_kill_switch_disables_operator_cache(self, fresh_cache,
                                                 monkeypatch):
        from repro.extraction.hierarchical import build_hierarchical_operator
        from repro.perf.cache import load_operator, store_operator

        operator = build_hierarchical_operator(
            self.stripe_segments(), leaf_size=4
        )
        monkeypatch.setenv("REPRO_EXTRACTION_CACHE", "off")
        store_operator("feed", operator)
        assert load_operator("feed") is None

    def test_digest_distinguishes_eta_and_tol(self):
        segments = self.stripe_segments()

        def digest(eta, tol):
            return fingerprint_segments(segments, {
                "assembly": "hierarchical", "eta": eta, "tol": tol,
                "leaf_size": 32, "close_ratio": 4.0,
                "close_subdivisions": 3,
            })

        digests = {
            digest(2.0, 1e-6), digest(1.5, 1e-6),
            digest(2.0, 1e-4), digest(1.5, 1e-4),
        }
        assert len(digests) == 4

    def test_hierarchical_extraction_memoizes(self, fresh_cache):
        from repro.extraction.partial_matrix import (
            extract_partial_inductance,
        )
        from repro.perf.cache import operator_cache_stats

        segments = self.stripe_segments()
        first = extract_partial_inductance(
            segments, assembly="hierarchical", leaf_size=4
        )
        before = operator_cache_stats()["hits"]
        second = extract_partial_inductance(
            segments, assembly="hierarchical", leaf_size=4
        )
        assert operator_cache_stats()["hits"] == before + 1
        assert np.array_equal(first.matrix, second.matrix)

    def test_tol_change_recomputes(self, fresh_cache):
        from repro.extraction.partial_matrix import (
            extract_partial_inductance,
        )
        from repro.perf.cache import operator_cache_stats

        segments = self.stripe_segments()
        extract_partial_inductance(
            segments, assembly="hierarchical", leaf_size=4, tol=1e-6
        )
        before = operator_cache_stats()["misses"]
        extract_partial_inductance(
            segments, assembly="hierarchical", leaf_size=4, tol=1e-5
        )
        assert operator_cache_stats()["misses"] > before


class TestExtractionMemoization:
    def test_repeat_extraction_hits_and_matches(self, fresh_cache,
                                                signal_grid_structure):
        from repro.extraction.partial_matrix import extract_for_layout

        layout, _ = signal_grid_structure
        first, _ = extract_for_layout(layout)
        before = cache_stats()
        second, _ = extract_for_layout(layout)
        after = cache_stats()
        assert np.array_equal(first.matrix, second.matrix)
        assert after["hits"] == before["hits"] + 1

    def test_cached_result_is_safe_to_mutate(self, fresh_cache,
                                             signal_grid_structure):
        from repro.extraction.partial_matrix import extract_for_layout

        layout, _ = signal_grid_structure
        first, _ = extract_for_layout(layout)
        pristine = first.matrix.copy()
        second, _ = extract_for_layout(layout)
        second.matrix[:] = 0.0  # the PEEC builder zeroes mutuals in place
        third, _ = extract_for_layout(layout)
        assert np.array_equal(third.matrix, pristine)

    def test_parameter_change_recomputes(self, fresh_cache,
                                         signal_grid_structure):
        from repro.extraction.partial_matrix import extract_for_layout

        layout, _ = signal_grid_structure
        extract_for_layout(layout)
        before = cache_stats()["misses"]
        extract_for_layout(layout, close_ratio=6.0)
        assert cache_stats()["misses"] > before


class TestFactorCacheIntegration:
    def test_adaptive_reuses_factorizations_across_steps(self):
        from repro.circuit.adaptive import adaptive_transient
        from repro.circuit.netlist import GROUND, Circuit
        from repro.circuit.waveforms import Ramp

        c = Circuit("rc")
        c.add_vsource("vin", "a", GROUND, Ramp(0.0, 1.0, 0.0, 1e-12))
        c.add_resistor("r", "a", "b", 1000.0)
        c.add_capacitor("c", "b", GROUND, 1e-12)
        res = adaptive_transient(c, 20e-9, 5e-12)
        # Once the step hits dt_max the same alpha repeats, so accepted
        # steps must outnumber factorizations: the cache is being hit.
        assert res.num_factorizations < len(res.times) - 5

    def test_fixed_step_result_matches_reference_after_lru_swap(self):
        # Force the transient engine through solve-fault step handling so
        # the factor cache sees the halved-substep alphas; the waveform
        # must still track an undisturbed run (halved steps integrate
        # with backward Euler, so exact equality is not expected).
        import numpy as np

        from repro.circuit.netlist import GROUND, Circuit
        from repro.circuit.transient import transient_analysis
        from repro.circuit.waveforms import Ramp
        from repro.resilience.faults import FaultSpec, inject_faults

        def rlc():
            c = Circuit("rlc")
            c.add_vsource("vin", "a", GROUND, Ramp(0.0, 1.0, 0.1e-9, 50e-12))
            c.add_resistor("r", "a", "b", 5.0)
            c.add_inductor("l", "b", "c", 1e-9)
            c.add_capacitor("c1", "c", GROUND, 0.5e-12)
            return c

        with inject_faults():
            clean = transient_analysis(rlc(), 2e-9, 1e-12, record=["c"])
        with inject_faults(
            FaultSpec("transient.step", "raise", probability=0.05,
                      max_hits=None)
        ):
            faulted = transient_analysis(rlc(), 2e-9, 1e-12, record=["c"])
        assert not faulted.report.clean  # the faults really fired
        err = np.max(np.abs(faulted.voltage("c") - clean.voltage("c")))
        assert err < 0.05
