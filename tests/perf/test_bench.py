"""The bench harness: JSON schema, regression gate, and a tiny live run."""

import json
import re

import numpy as np
import pytest

from repro.perf.bench import (
    BENCH_SCHEMA,
    TIMED_SECTIONS,
    BenchConfig,
    BenchReport,
    compare_benchmarks,
    default_output_path,
    run_benchmarks,
    write_report,
)


def section(seconds, **extra):
    return {"seconds": seconds, **extra}


def report_dict(**overrides):
    sections = {
        "assembly_cold": section(0.5),
        "assembly_cached": section(0.001),
        "sparsify": section(0.2),
        "loop_sweep_serial": section(2.0),
        "loop_sweep_parallel": section(0.8, arrays_identical=True),
        "transient": section(1.0),
    }
    sections.update(overrides)
    return {"schema": BENCH_SCHEMA, "sections": sections}


class TestCompare:
    def test_no_regression_on_identical_runs(self):
        base = report_dict()
        assert compare_benchmarks(base, base) == []

    def test_flags_large_slowdown(self):
        current = report_dict(transient=section(2.5))
        problems = compare_benchmarks(current, report_dict())
        assert len(problems) == 1
        assert "transient" in problems[0]

    def test_allows_slowdown_within_factor(self):
        current = report_dict(transient=section(1.9))
        assert compare_benchmarks(current, report_dict()) == []

    def test_skips_noise_dominated_sections(self):
        # assembly_cached is ~microseconds in the baseline; even a 100x
        # blowup is timer noise, not a regression.
        current = report_dict(assembly_cached=section(0.04))
        assert compare_benchmarks(current, report_dict()) == []

    def test_skips_sections_missing_from_either_file(self):
        current = report_dict()
        del current["sections"]["sparsify"]
        assert compare_benchmarks(current, report_dict()) == []

    def test_flags_parallel_serial_mismatch(self):
        current = report_dict(
            loop_sweep_parallel=section(0.8, arrays_identical=False)
        )
        problems = compare_benchmarks(current, report_dict())
        assert any("differs" in p for p in problems)

    def test_custom_regression_factor(self):
        current = report_dict(transient=section(1.5))
        assert compare_benchmarks(
            current, report_dict(), max_regression=1.2
        )

    def test_flags_hierarchical_error_above_tolerance(self):
        current = report_dict(
            hierarchical=section(0.5, max_rel_error=5e-3, spd_ok=True)
        )
        problems = compare_benchmarks(current, report_dict())
        assert any("hierarchical" in p and "error" in p for p in problems)

    def test_flags_hierarchical_spd_failure(self):
        current = report_dict(
            hierarchical=section(0.5, max_rel_error=1e-7, spd_ok=False)
        )
        problems = compare_benchmarks(current, report_dict())
        assert any("passivity" in p for p in problems)

    def test_flags_iterative_error_above_tolerance(self):
        current = report_dict(
            solve_iterative=section(
                0.5, max_rel_error=5e-6, to_dense_calls=0,
                krylov_fallbacks=0,
            )
        )
        problems = compare_benchmarks(current, report_dict())
        assert any(
            "solve_iterative" in p and "error" in p for p in problems
        )

    def test_flags_iterative_densification(self):
        current = report_dict(
            solve_iterative=section(
                0.5, max_rel_error=1e-9, to_dense_calls=3,
                krylov_fallbacks=0,
            )
        )
        problems = compare_benchmarks(current, report_dict())
        assert any("to_dense" in p for p in problems)

    def test_flags_iterative_krylov_fallbacks(self):
        current = report_dict(
            solve_iterative=section(
                0.5, max_rel_error=1e-9, to_dense_calls=0,
                krylov_fallbacks=2,
            )
        )
        problems = compare_benchmarks(current, report_dict())
        assert any("fell back" in p for p in problems)

    def test_accepts_clean_iterative_section(self):
        current = report_dict(
            solve_iterative=section(
                0.5, max_rel_error=1e-9, to_dense_calls=0,
                krylov_fallbacks=0,
            )
        )
        assert compare_benchmarks(current, report_dict()) == []

    def test_accepts_hierarchical_within_tolerance(self):
        current = report_dict(
            hierarchical=section(0.5, max_rel_error=1e-7, spd_ok=True)
        )
        assert compare_benchmarks(current, report_dict()) == []


class TestReportShape:
    def test_default_output_name(self, tmp_path):
        path = default_output_path(tmp_path)
        assert re.fullmatch(r"BENCH_\d{8}\.json", path.name)

    def test_speedup_property(self):
        report = BenchReport(config=BenchConfig())
        assert report.speedup is None
        report.add("loop_sweep_serial", 2.0)
        report.add("loop_sweep_parallel", 0.5)
        assert report.speedup == pytest.approx(4.0)

    def test_smoke_config_is_smaller(self):
        smoke = BenchConfig.for_mode(smoke=True)
        full = BenchConfig.for_mode(smoke=False)
        assert smoke.die < full.die
        assert smoke.num_freqs < full.num_freqs

    def test_explicit_worker_override(self):
        assert BenchConfig.for_mode(smoke=True, workers=9).workers == 9


class TestLiveRun:
    @pytest.fixture(scope="class")
    def live_report(self):
        config = BenchConfig(
            smoke=True, workers=2, die=200e-6, num_branches=2,
            branch_length=60e-6, stripe_pitch=50e-6, num_freqs=4,
            hier_lines=8, hier_pieces=8, hier_leaf_size=8,
        )
        return run_benchmarks(config, echo=lambda *_: None)

    def test_all_sections_present(self, live_report):
        for name in TIMED_SECTIONS:
            assert name in live_report.sections
            assert live_report.sections[name]["seconds"] >= 0.0

    def test_hierarchical_section_within_tolerance(self, live_report):
        hier = live_report.sections["hierarchical"]
        assert hier["max_rel_error"] <= 1e-3
        assert hier["spd_ok"] is True
        assert hier["n"] == 8 * 8

    def test_parallel_matches_serial(self, live_report):
        assert live_report.sections["loop_sweep_parallel"]["arrays_identical"]

    def test_iterative_section_is_matrix_free(self, live_report):
        it = live_report.sections["solve_iterative"]
        assert it["max_rel_error"] <= 1e-6
        assert it["to_dense_calls"] == 0
        assert it["krylov_fallbacks"] == 0
        assert it["krylov_solves"] > 0
        assert it["operator_bytes"] > 0

    def test_cached_assembly_identical_and_hit(self, live_report):
        cached = live_report.sections["assembly_cached"]
        assert cached["identical"]
        assert cached["hits"] >= 1

    def test_json_roundtrip(self, live_report, tmp_path):
        path = write_report(live_report, tmp_path / "BENCH_test.json")
        data = json.loads(path.read_text())
        assert data["schema"] == BENCH_SCHEMA
        assert data["config"]["smoke"] is True
        assert set(TIMED_SECTIONS) <= set(data["sections"])
        # A fresh run never regresses against itself.
        assert compare_benchmarks(data, data) == []
