"""SINO: shield insertion and net ordering."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.design.sino import (
    NetSpec,
    SINOProblem,
    SINOSolution,
    _noise,
    anneal_sino,
    greedy_sino,
    is_feasible,
    random_problem,
    violations,
)


def tiny_problem():
    return SINOProblem(
        nets=[
            NetSpec("loud", aggressiveness=2.0, cap_bound=5.0, ind_bound=5.0),
            NetSpec("quiet", aggressiveness=0.1, cap_bound=0.5, ind_bound=0.5),
            NetSpec("mid", aggressiveness=1.0, cap_bound=3.0, ind_bound=3.0),
        ]
    )


class TestNoiseModel:
    def test_shield_blocks_capacitive_neighbour(self):
        problem = tiny_problem()
        order = ["loud", "quiet", "mid"]
        open_sol = SINOSolution(order=order)
        shielded = SINOSolution(order=order, shields_after={0})
        n_open = _noise(problem, open_sol)["quiet"]
        n_shielded = _noise(problem, shielded)["quiet"]
        assert n_shielded[0] < n_open[0]  # cap noise down
        assert n_shielded[1] < n_open[1]  # inductive noise down (halo cut)

    def test_inductive_noise_decays_with_distance(self):
        problem = SINOProblem(
            nets=[
                NetSpec("v", 0.0, 10.0, 10.0),
                NetSpec("a1", 1.0, 10.0, 10.0),
                NetSpec("pad", 0.0, 10.0, 10.0),
                NetSpec("a2", 1.0, 10.0, 10.0),
            ]
        )
        sol = SINOSolution(order=["v", "a1", "pad", "a2"])
        noise = _noise(problem, sol)["v"]
        # a1 contributes ind_unit, a2 contributes ind_unit/3.
        assert noise[1] == pytest.approx(problem.ind_unit * (1 + 1 / 3))

    def test_area_counts_shields(self):
        sol = SINOSolution(order=["a", "b"], shields_after={0})
        assert sol.area == 3


class TestSolvers:
    def test_greedy_is_feasible(self):
        problem = tiny_problem()
        sol = greedy_sino(problem)
        assert is_feasible(problem, sol)
        assert sorted(sol.order) == sorted(n.name for n in problem.nets)

    def test_greedy_on_random_instances(self):
        for seed in range(5):
            problem = random_problem(num_nets=8, seed=seed)
            sol = greedy_sino(problem)
            assert is_feasible(problem, sol)

    def test_anneal_feasible_and_no_worse(self):
        problem = random_problem(num_nets=8, seed=3)
        greedy = greedy_sino(problem)
        annealed = anneal_sino(problem, iterations=2000, seed=1)
        assert is_feasible(problem, annealed)
        assert annealed.area <= greedy.area

    def test_anneal_deterministic_for_seed(self):
        problem = random_problem(num_nets=6, seed=9)
        a = anneal_sino(problem, iterations=500, seed=42)
        b = anneal_sino(problem, iterations=500, seed=42)
        assert a.order == b.order
        assert a.shields_after == b.shields_after

    def test_violations_zero_iff_feasible(self):
        problem = tiny_problem()
        # Put quiet right next to loud with no shield: should violate.
        bad = SINOSolution(order=["loud", "quiet", "mid"])
        assert violations(problem, bad) > 0
        assert not is_feasible(problem, bad)

    @given(seed=st.integers(0, 500))
    @settings(max_examples=15, deadline=None)
    def test_greedy_always_feasible_property(self, seed):
        problem = random_problem(num_nets=7, seed=seed)
        assert is_feasible(problem, greedy_sino(problem))


class TestProblemValidation:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            SINOProblem(nets=[NetSpec("a", 1, 1, 1), NetSpec("a", 1, 1, 1)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SINOProblem(nets=[])
