"""Design-technique studies: the Figure 5-9 trend assertions at mini scale.

These are integration tests of the whole stack (layout generator ->
extraction -> circuit -> analysis); parameters are shrunk for speed, the
benchmark harness runs the full-size versions.
"""

import pytest

from repro.design.ground_plane import ground_plane_study
from repro.design.interdigitate import interdigitation_study
from repro.design.shielding import shielding_study
from repro.design.staggered import staggered_study
from repro.design.twisted_bundle import twisted_bundle_study


@pytest.mark.slow
class TestShielding:
    def test_shields_reduce_inductance(self):
        results = shielding_study(
            shield_spacings=(2e-6,), length=300e-6,
        )
        baseline, shielded = results
        assert baseline.shield_spacing is None
        assert shielded.loop_inductance < baseline.loop_inductance

    def test_tighter_shields_reduce_more(self):
        results = shielding_study(
            shield_spacings=(1e-6, 8e-6), length=300e-6,
        )
        _, tight, loose = results
        assert tight.loop_inductance < loose.loop_inductance


@pytest.mark.slow
class TestGroundPlanes:
    def test_planes_beat_baseline_at_high_frequency(self):
        results = ground_plane_study(
            frequencies=[1e8, 3e10], length=300e-6,
        )
        by_label = {r.label: r for r in results}
        base = by_label["baseline"]
        planes = by_label["with ground planes"]
        assert planes.inductance[-1] < base.inductance[-1]

    def test_plane_benefit_grows_with_frequency(self):
        results = ground_plane_study(
            frequencies=[1e8, 3e10], length=300e-6,
        )
        by_label = {r.label: r for r in results}
        base = by_label["baseline"]
        planes = by_label["with ground planes"]
        ratio_low = planes.inductance[0] / base.inductance[0]
        ratio_high = planes.inductance[-1] / base.inductance[-1]
        assert ratio_high < ratio_low  # "planes help mostly at high f"


@pytest.mark.slow
class TestInterdigitation:
    def test_fingers_cut_inductance_raise_r_and_c(self):
        results = interdigitation_study(
            finger_counts=(1, 4), length=300e-6,
        )
        solid, fingered = results
        assert fingered.loop_inductance < solid.loop_inductance
        assert fingered.signal_resistance > solid.signal_resistance
        assert fingered.total_capacitance > solid.total_capacitance
        assert fingered.metal_area > solid.metal_area


@pytest.mark.slow
class TestStaggered:
    def test_staggering_cuts_victim_noise(self):
        results = staggered_study(length=300e-6, t_stop=0.5e-9)
        by_pattern = {r.pattern: r for r in results}
        assert by_pattern["staggered"].victim_peak_noise < \
            0.2 * by_pattern["non-staggered"].victim_peak_noise

    def test_nonstaggered_noise_is_nonzero(self):
        results = staggered_study(length=300e-6, t_stop=0.5e-9)
        by_pattern = {r.pattern: r for r in results}
        assert by_pattern["non-staggered"].victim_peak_noise > 1e-4


@pytest.mark.slow
class TestTwistedBundle:
    def test_twisting_cuts_victim_noise(self):
        results = twisted_bundle_study(
            num_regions=4, length=400e-6, t_stop=0.4e-9,
        )
        by_style = {r.style: r for r in results}
        assert by_style["twisted"].victim_peak_noise < \
            0.9 * by_style["parallel"].victim_peak_noise

    def test_twisting_costs_metal(self):
        results = twisted_bundle_study(
            num_regions=4, length=400e-6, t_stop=0.3e-9,
        )
        by_style = {r.style: r for r in results}
        assert by_style["twisted"].num_segments > \
            by_style["parallel"].num_segments
