"""SINO physical cross-validation."""

import pytest

from repro.design.sino import (
    NetSpec,
    SINOProblem,
    SINOSolution,
    greedy_sino,
)
from repro.design.sino_layout import (
    measure_channel_noise,
    solution_to_layout,
)


@pytest.fixture(scope="module")
def problem():
    return SINOProblem(
        nets=[
            NetSpec("agg0", aggressiveness=1.5, cap_bound=3.0, ind_bound=3.0),
            NetSpec("victim", aggressiveness=0.1, cap_bound=0.4,
                    ind_bound=0.4),
            NetSpec("agg1", aggressiveness=1.2, cap_bound=3.0, ind_bound=3.0),
            NetSpec("agg2", aggressiveness=1.0, cap_bound=3.0, ind_bound=3.0),
        ]
    )


class TestLayoutConstruction:
    def test_tracks_and_shields(self, problem):
        solution = SINOSolution(
            order=["agg0", "victim", "agg1", "agg2"], shields_after={0, 1}
        )
        layout, taps = solution_to_layout(solution, length=200e-6)
        signals = [s for s in layout.segments
                   if layout.nets[s.net].kind.value == "signal"]
        grounds = [s for s in layout.segments if s.net == "GND"]
        assert len(signals) == 4
        assert len(grounds) == 4  # 2 shields + 2 edges

    def test_order_respected(self, problem):
        solution = SINOSolution(order=["agg1", "victim", "agg0", "agg2"])
        layout, taps = solution_to_layout(solution, pitch=3e-6)
        ys = {net: taps[f"{net}:in"].y for net in solution.order}
        ordered = sorted(ys, key=ys.get)
        assert ordered == solution.order


@pytest.mark.slow
class TestPhysicalNoise:
    def test_shielded_placement_quieter_than_bare(self, problem):
        bare = SINOSolution(
            order=["agg0", "victim", "agg1", "agg2"], shields_after=set()
        )
        shielded = SINOSolution(
            order=["agg0", "victim", "agg1", "agg2"], shields_after={0, 1}
        )
        noise_bare = measure_channel_noise(problem, bare, length=300e-6,
                                           t_stop=0.4e-9)
        noise_shielded = measure_channel_noise(problem, shielded,
                                               length=300e-6, t_stop=0.4e-9)
        assert "victim" in noise_bare.per_net
        assert noise_shielded.worst_noise < 0.6 * noise_bare.worst_noise

    def test_solver_placement_beats_worst_case(self, problem):
        # The greedy solver's (feasible) placement should beat the
        # deliberately bad one: victim sandwiched between the loudest
        # aggressors with no shields.
        bad = SINOSolution(order=["agg0", "victim", "agg1", "agg2"])
        good = greedy_sino(problem)
        noise_bad = measure_channel_noise(problem, bad, length=300e-6,
                                          t_stop=0.4e-9)
        noise_good = measure_channel_noise(problem, good, length=300e-6,
                                           t_stop=0.4e-9)
        assert noise_good.worst_noise < noise_bad.worst_noise
