"""Dense partial-inductance matrix assembly."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extraction.inductance import (
    mutual_between_segments,
    mutual_inductance_bars,
    mutual_inductance_filaments,
    self_inductance_bar,
)
from repro.extraction.partial_matrix import (
    PartialInductanceResult,
    extract_for_layout,
    extract_partial_inductance,
    structural_mutual_count,
)
from repro.geometry.layout import Layout, NetKind
from repro.geometry.segment import Direction, Segment, default_layer_stack


def parallel_lines(num=4, pitch=5e-6, length=200e-6):
    return [
        Segment(net="s", layer="M6", direction=Direction.X,
                origin=(0.0, k * pitch, 7e-6), length=length,
                width=1e-6, thickness=0.5e-6, name=f"l{k}")
        for k in range(num)
    ]


class TestAssembly:
    def test_symmetric_positive_definite(self):
        result = extract_partial_inductance(parallel_lines())
        m = result.matrix
        assert np.allclose(m, m.T)
        assert result.is_positive_definite()

    def test_diagonal_matches_self_formula(self):
        segs = parallel_lines(2)
        result = extract_partial_inductance(segs)
        for k, seg in enumerate(segs):
            assert result.matrix[k, k] == pytest.approx(
                self_inductance_bar(seg.length, seg.width, seg.thickness)
            )

    def test_offdiagonal_matches_pairwise(self):
        segs = parallel_lines(3)
        result = extract_partial_inductance(segs)
        for i in range(3):
            for j in range(i + 1, 3):
                direct = mutual_between_segments(
                    segs[i], segs[j], subdivisions=3
                )
                # The matrix may use 1 filament for far pairs.
                assert result.matrix[i, j] == pytest.approx(direct, rel=0.02)

    def test_orthogonal_pairs_are_zero(self):
        segs = parallel_lines(2)
        segs.append(
            Segment(net="s", layer="M5", direction=Direction.Y,
                    origin=(50e-6, 0.0, 5e-6), length=100e-6,
                    width=1e-6, thickness=0.5e-6, name="ortho")
        )
        result = extract_partial_inductance(segs)
        assert result.matrix[0, 2] == 0.0
        assert result.matrix[1, 2] == 0.0

    def test_mutuals_count(self):
        result = extract_partial_inductance(parallel_lines(4))
        assert result.num_mutuals == 6  # C(4,2)

    def test_coupling_coefficient_below_one(self):
        result = extract_partial_inductance(parallel_lines(3, pitch=2e-6))
        for i in range(3):
            for j in range(3):
                if i != j:
                    assert abs(result.coupling_coefficient(i, j)) < 1.0

    def test_nearer_pairs_couple_stronger(self):
        result = extract_partial_inductance(parallel_lines(3, pitch=4e-6))
        assert result.matrix[0, 1] > result.matrix[0, 2]

    def test_rejects_vias(self):
        via = Segment(net="s", layer="M6", direction=Direction.Z,
                      origin=(0, 0, 1e-6), length=1e-6, width=1e-6,
                      thickness=1e-6, name="via")
        with pytest.raises(ValueError):
            extract_partial_inductance([via])

    def test_blocked_assembly_matches_unblocked(self):
        segs = parallel_lines(6)
        a = extract_partial_inductance(segs, block=2)
        b = extract_partial_inductance(segs, block=512)
        assert np.allclose(a.matrix, b.matrix)

    def test_layout_extraction_skips_vias(self, small_grid_layout):
        result, indices = extract_for_layout(small_grid_layout)
        assert result.size == len(indices)
        assert result.size == len(
            [s for s in small_grid_layout.segments
             if s.direction != Direction.Z]
        )

    def test_grid_layout_matrix_is_pd(self, small_grid_layout):
        result, _ = extract_for_layout(small_grid_layout)
        assert result.is_positive_definite()

    def test_structure_extraction_pd(self, signal_grid_extraction):
        assert signal_grid_extraction.is_positive_definite()


class TestClosePairClassification:
    def test_wide_adjacent_bars_use_bar_integral(self):
        # Two 10-um-wide bars whose centers sit 45 um apart: the old
        # center-to-center rule saw 45 um > 4 x 10 um and classified the
        # pair as far (center-filament formula), but the edge-to-edge
        # gap is only 35 um < 40 um -- cross-section size still matters.
        width, thick, pitch = 10e-6, 0.5e-6, 45e-6
        segs = [
            Segment(net="s", layer="M6", direction=Direction.X,
                    origin=(0.0, k * pitch, 7e-6), length=200e-6,
                    width=width, thickness=thick, name=f"w{k}")
            for k in range(2)
        ]
        result = extract_partial_inductance(segs)
        bar = mutual_inductance_bars(
            0.0, 200e-6, 0.0, 200e-6, pitch, 0.0,
            width, thick, width, thick, subdivisions=3,
        )
        filament = mutual_inductance_filaments(
            0.0, 200e-6, 0.0, 200e-6, pitch
        )
        assert bar != filament  # the two formulas genuinely differ here
        assert result.matrix[0, 1] == bar

    def test_narrow_far_bars_still_use_filament(self):
        segs = parallel_lines(2, pitch=50e-6)
        result = extract_partial_inductance(segs)
        filament = mutual_inductance_filaments(
            segs[0].axis_start, segs[0].axis_end,
            segs[1].axis_start, segs[1].axis_end, 50e-6,
        )
        assert result.matrix[0, 1] == filament


class TestCouplingGuard:
    def test_nonpositive_diagonal_raises_naming_row(self):
        segs = parallel_lines(2)
        result = extract_partial_inductance(segs)
        broken = result.matrix.copy()
        broken[1, 1] = 0.0
        tampered = PartialInductanceResult(segments=segs, matrix=broken)
        with pytest.raises(ValueError, match=r"L\[1,1\].*'l1'"):
            tampered.coupling_coefficient(0, 1)

    def test_negative_diagonal_raises_too(self):
        segs = parallel_lines(2)
        result = extract_partial_inductance(segs)
        broken = result.matrix.copy()
        broken[0, 0] = -broken[0, 0]
        tampered = PartialInductanceResult(segments=segs, matrix=broken)
        with pytest.raises(ValueError, match=r"L\[0,0\]"):
            tampered.coupling_coefficient(0, 1)


class TestStructuralMutualCount:
    def test_mixed_directions(self):
        segs = parallel_lines(3)
        segs.append(
            Segment(net="s", layer="M5", direction=Direction.Y,
                    origin=(50e-6, 0.0, 5e-6), length=100e-6,
                    width=1e-6, thickness=0.5e-6, name="ortho")
        )
        # 3 parallel X lines couple pairwise; the lone Y line couples
        # with nothing.
        assert structural_mutual_count(segs) == 3

    def test_zero_valued_mutual_still_counted(self):
        # num_mutuals is structural: zeroing a stored mutual (as the
        # PEEC builder does for sub-threshold couplings, and as symmetric
        # cancellation can do exactly) must not change the count.
        segs = parallel_lines(3)
        result = extract_partial_inductance(segs)
        result.matrix[0, 1] = 0.0
        result.matrix[1, 0] = 0.0
        assert result.num_mutuals == 3


class TestRandomizedPD:
    @given(
        seed=st.integers(0, 10_000),
        num=st.integers(2, 8),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_nonoverlapping_lines_give_pd_matrix(self, seed, num):
        rng = np.random.default_rng(seed)
        segs = []
        y = 0.0
        for k in range(num):
            y += float(rng.uniform(2e-6, 20e-6))
            segs.append(
                Segment(
                    net="s", layer="M6", direction=Direction.X,
                    origin=(float(rng.uniform(0, 100e-6)), y, 7e-6),
                    length=float(rng.uniform(20e-6, 500e-6)),
                    width=float(rng.uniform(0.5e-6, 3e-6)),
                    thickness=0.5e-6,
                    name=f"r{k}",
                )
            )
        result = extract_partial_inductance(segs)
        assert result.is_positive_definite()
