"""Hierarchical (cluster tree + ACA) partial-inductance engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extraction.hierarchical import (
    DEFAULT_TOL,
    MAX_ACA_RANK,
    aca,
    build_cluster_tree,
    build_hierarchical_operator,
    extract_hierarchical,
    is_admissible,
)
from repro.extraction.partial_matrix import (
    extract_for_layout,
    extract_partial_inductance,
)
from repro.geometry.segment import Direction, Segment
from repro.scenarios.variants import VARIANTS, build_variant

#: Loose end-to-end bound: ACA's per-block relative Frobenius tolerance
#: is DEFAULT_TOL = 1e-6; entrywise max error across all blocks stays
#: orders of magnitude under this.
E2E_RTOL = 1e-4


def stripe_grid(num_lines=12, pieces=6, pitch=4e-6, length=240e-6):
    segments = []
    for i in range(num_lines):
        line = Segment(net=f"n{i}", layer="M6", direction=Direction.X,
                       origin=(0.0, i * pitch, 7e-6), length=length,
                       width=1e-6, thickness=0.5e-6, name=f"s{i}")
        segments.extend(line.split(pieces))
    return segments


def max_rel_error(approx, exact):
    return float(np.max(np.abs(approx - exact)) / np.max(np.abs(exact)))


class TestClusterTree:
    def test_leaves_partition_indices(self):
        lo = np.random.default_rng(0).uniform(0, 1, size=(40, 3))
        hi = lo + 0.01
        root = build_cluster_tree(lo, hi, leaf_size=4)
        leaves = []

        def walk(node):
            if node.is_leaf:
                leaves.append(node)
            else:
                walk(node.left)
                walk(node.right)

        walk(root)
        seen = np.concatenate([leaf.indices for leaf in leaves])
        assert sorted(seen.tolist()) == list(range(40))
        assert all(leaf.size <= 4 for leaf in leaves)

    def test_boxes_contain_members(self):
        rng = np.random.default_rng(1)
        lo = rng.uniform(0, 1, size=(25, 3))
        hi = lo + rng.uniform(0, 0.1, size=(25, 3))
        root = build_cluster_tree(lo, hi, leaf_size=5)

        def walk(node):
            assert np.all(lo[node.indices] >= node.lo - 1e-15)
            assert np.all(hi[node.indices] <= node.hi + 1e-15)
            if not node.is_leaf:
                walk(node.left)
                walk(node.right)

        walk(root)

    def test_admissibility_needs_positive_distance(self):
        lo = np.array([[0.0, 0.0, 0.0], [0.5, 0.0, 0.0]])
        hi = lo + 0.6  # overlapping boxes
        a = build_cluster_tree(lo[:1], hi[:1], leaf_size=1)
        b = build_cluster_tree(lo[1:], hi[1:], leaf_size=1)
        assert a.distance(b) == 0.0
        assert not is_admissible(a, b, eta=100.0)

    def test_rejects_bad_leaf_size(self):
        with pytest.raises(ValueError):
            build_cluster_tree(np.zeros((2, 3)), np.ones((2, 3)), leaf_size=0)


class TestACA:
    @staticmethod
    def smooth_matrix(m, n):
        i = np.arange(m)[:, None]
        j = np.arange(n)[None, :]
        return 1.0 / (1.0 + np.abs(3.0 * i - 2.0 * j) + i + j)

    def test_compresses_smooth_kernel(self):
        a = self.smooth_matrix(40, 30)
        uv = aca(lambda i: a[i], lambda j: a[:, j], 40, 30, tol=1e-8)
        assert uv is not None
        u, v = uv
        assert u.shape[1] < 30
        rel = np.linalg.norm(u @ v - a) / np.linalg.norm(a)
        assert rel < 1e-6

    def test_exact_low_rank_recovers_rank(self):
        rng = np.random.default_rng(3)
        a = rng.standard_normal((30, 4)) @ rng.standard_normal((4, 25))
        uv = aca(lambda i: a[i], lambda j: a[:, j], 30, 25, tol=1e-10)
        assert uv is not None
        u, v = uv
        assert u.shape[1] <= 6
        assert np.linalg.norm(u @ v - a) <= 1e-8 * np.linalg.norm(a)

    def test_returns_none_on_rank_cap(self):
        rng = np.random.default_rng(4)
        a = rng.standard_normal((60, 60))  # full rank, incompressible
        uv = aca(lambda i: a[i], lambda j: a[:, j], 60, 60,
                 tol=1e-14, max_rank=5)
        assert uv is None

    def test_zero_matrix_gives_rank_zero(self):
        a = np.zeros((8, 9))
        uv = aca(lambda i: a[i], lambda j: a[:, j], 8, 9, tol=1e-6)
        assert uv is not None
        u, v = uv
        assert u.shape == (8, 0) or np.allclose(u @ v, 0.0)

    def test_rejects_nonpositive_tol(self):
        with pytest.raises(ValueError):
            aca(lambda i: np.zeros(3), lambda j: np.zeros(3), 3, 3, tol=0.0)

    def test_rank_cap_default_is_sane(self):
        assert 16 <= MAX_ACA_RANK <= 256


class TestOperator:
    @pytest.fixture(scope="class")
    def case(self):
        segments = stripe_grid()
        exact = extract_partial_inductance(segments).matrix
        operator = build_hierarchical_operator(segments, leaf_size=8)
        return segments, exact, operator

    def test_to_dense_matches_exact(self, case):
        _, exact, operator = case
        assert max_rel_error(operator.to_dense(), exact) <= E2E_RTOL

    def test_dense_is_symmetric(self, case):
        _, _, operator = case
        dense = operator.to_dense()
        assert np.array_equal(dense, dense.T)

    def test_matvec_agrees_with_dense(self, case):
        _, _, operator = case
        dense = operator.to_dense()
        rng = np.random.default_rng(7)
        for _ in range(3):
            x = rng.standard_normal(operator.n)
            y = operator.matvec(x)
            ref = dense @ x
            assert np.max(np.abs(y - ref)) <= 1e-12 * np.max(np.abs(ref))

    def test_matvec_rejects_bad_shape(self, case):
        _, _, operator = case
        with pytest.raises(ValueError):
            operator.matvec(np.zeros(operator.n + 1))

    def test_actually_compresses(self, case):
        _, exact, operator = case
        stats = operator.stats()
        assert stats["num_far_blocks"] > 0
        assert stats["memory_bytes"] < exact.nbytes
        assert stats["compression"] > 1.0

    def test_stats_fields(self, case):
        _, _, operator = case
        stats = operator.stats()
        for key in ("n", "num_far_blocks", "max_rank", "memory_bytes",
                    "dense_bytes", "compression", "aca_fallbacks",
                    "eta", "tol", "leaf_size"):
            assert key in stats

    def test_rejects_nonpositive_eta(self):
        with pytest.raises(ValueError):
            build_hierarchical_operator(stripe_grid(4, 2), eta=0.0)


class TestVariantFamilies:
    """to_dense() matches exact assembly across all eight families."""

    @pytest.mark.parametrize("variant", sorted(VARIANTS))
    def test_matches_exact_within_tolerance(self, variant):
        layout, _ = build_variant(variant, length=400e-6)
        exact, indices = extract_for_layout(layout)
        hier, hier_indices = extract_for_layout(
            layout, assembly="hierarchical", leaf_size=4
        )
        assert hier_indices == indices
        assert hier.size == exact.size
        assert max_rel_error(hier.matrix, exact.matrix) <= E2E_RTOL

    @pytest.mark.parametrize("variant", sorted(VARIANTS))
    def test_stays_positive_definite(self, variant):
        layout, _ = build_variant(variant, length=400e-6)
        hier, _ = extract_for_layout(
            layout, assembly="hierarchical", leaf_size=4
        )
        assert hier.is_positive_definite()


class TestExtractionDispatch:
    def test_unknown_assembly_raises(self):
        with pytest.raises(ValueError, match="assembly"):
            extract_partial_inductance(stripe_grid(4, 2), assembly="magic")

    def test_hier_knobs_rejected_for_exact(self):
        with pytest.raises(ValueError, match="hierarchical"):
            extract_partial_inductance(stripe_grid(4, 2), tol=1e-6)

    def test_result_duck_type(self):
        segments = stripe_grid(6, 3)
        result = extract_partial_inductance(
            segments, assembly="hierarchical", leaf_size=4
        )
        exact = extract_partial_inductance(segments)
        assert result.size == exact.size
        assert result.num_mutuals == exact.num_mutuals
        assert result.coupling_coefficient(0, 1) == pytest.approx(
            exact.coupling_coefficient(0, 1), rel=1e-6
        )

    def test_rejects_vias(self):
        via = Segment(net="s", layer="M6", direction=Direction.Z,
                      origin=(0, 0, 1e-6), length=1e-6, width=1e-6,
                      thickness=1e-6, name="via")
        with pytest.raises(ValueError):
            extract_hierarchical([via])

    def test_default_tol_is_tight(self):
        assert DEFAULT_TOL <= 1e-4


class TestRandomizedAgainstExact:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_random_grids_match_exact(self, seed):
        rng = np.random.default_rng(seed)
        segments = []
        y = 0.0
        for k in range(int(rng.integers(6, 12))):
            y += float(rng.uniform(2e-6, 10e-6))
            line = Segment(
                net="s", layer="M6", direction=Direction.X,
                origin=(float(rng.uniform(0, 50e-6)), y, 7e-6),
                length=float(rng.uniform(60e-6, 300e-6)),
                width=float(rng.uniform(0.5e-6, 3e-6)),
                thickness=0.5e-6, name=f"r{k}",
            )
            segments.extend(line.split(int(rng.integers(1, 5))))
        exact = extract_partial_inductance(segments).matrix
        operator = build_hierarchical_operator(segments, leaf_size=4)
        assert max_rel_error(operator.to_dense(), exact) <= E2E_RTOL
