"""Chern-style capacitance models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extraction.capacitance import (
    CapacitanceModel,
    coupling_capacitance_per_length,
    ground_capacitance_per_length,
)
from repro.geometry.structures import build_bus
from repro.geometry.layout import Layout, NetKind
from repro.geometry.segment import Direction, default_layer_stack


class TestGroundCapacitance:
    def test_typical_magnitude(self):
        # On-chip ground cap is famously ~0.1-0.2 fF/um.
        c = ground_capacitance_per_length(2e-6, 1e-6, 5e-6)
        assert 0.5e-10 < c < 3e-10  # F/m = 0.05-0.3 fF/um

    def test_wider_is_more(self):
        narrow = ground_capacitance_per_length(1e-6, 1e-6, 3e-6)
        wide = ground_capacitance_per_length(4e-6, 1e-6, 3e-6)
        assert wide > narrow

    def test_higher_above_plane_is_less(self):
        low = ground_capacitance_per_length(2e-6, 1e-6, 1e-6)
        high = ground_capacitance_per_length(2e-6, 1e-6, 6e-6)
        assert high < low

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ground_capacitance_per_length(0.0, 1e-6, 1e-6)

    @given(
        width=st.floats(0.2e-6, 20e-6),
        thickness=st.floats(0.2e-6, 3e-6),
        height=st.floats(0.3e-6, 10e-6),
    )
    @settings(max_examples=50)
    def test_always_positive(self, width, thickness, height):
        assert ground_capacitance_per_length(width, thickness, height) > 0


class TestCouplingCapacitance:
    def test_tighter_spacing_is_more(self):
        tight = coupling_capacitance_per_length(1e-6, 0.5e-6, 3e-6, 2e-6)
        loose = coupling_capacitance_per_length(1e-6, 2e-6, 3e-6, 2e-6)
        assert tight > loose

    def test_rejects_zero_spacing(self):
        with pytest.raises(ValueError):
            coupling_capacitance_per_length(1e-6, 0.0, 3e-6, 2e-6)

    def test_never_negative(self):
        c = coupling_capacitance_per_length(0.1e-6, 10e-6, 10e-6, 0.1e-6)
        assert c >= 0.0


class TestCapacitanceModel:
    def test_segment_ground_capacitance_scales_with_length(self):
        layout, _ = build_bus(num_signals=1, length=200e-6, edge_grounds=False)
        model = CapacitanceModel()
        seg = layout.segments_of("bus0")[0]
        c = model.segment_ground_capacitance(seg, layout)
        layout2, _ = build_bus(num_signals=1, length=400e-6, edge_grounds=False)
        seg2 = layout2.segments_of("bus0")[0]
        c2 = model.segment_ground_capacitance(seg2, layout2)
        assert c2 == pytest.approx(2 * c, rel=1e-9)

    def test_coupling_pairs_found_for_adjacent_lines(self):
        layout, _ = build_bus(num_signals=2, pitch=3e-6, wire_width=1e-6,
                              edge_grounds=False)
        pairs = CapacitanceModel().coupling_pairs(layout)
        assert len(pairs) == 1
        i, j, c = pairs[0]
        assert c > 0

    def test_coupling_cutoff(self):
        layout, _ = build_bus(num_signals=2, pitch=50e-6, edge_grounds=False)
        pairs = CapacitanceModel(coupling_max_gap=5e-6).coupling_pairs(layout)
        assert pairs == []

    def test_no_coupling_across_layers(self):
        layout = Layout(default_layer_stack(6))
        layout.add_net("a", NetKind.SIGNAL)
        layout.add_net("b", NetKind.SIGNAL)
        layout.add_wire("a", "M5", Direction.X, (0.0, 0.0), 100e-6, 1e-6)
        layout.add_wire("b", "M6", Direction.X, (0.0, 0.0), 100e-6, 1e-6)
        assert CapacitanceModel().coupling_pairs(layout) == []

    def test_segment_at_substrate_rejected(self):
        layout = Layout(default_layer_stack(6))
        layout.add_net("a", NetKind.SIGNAL)
        from repro.geometry.segment import Segment

        seg = Segment(net="a", layer="M6", direction=Direction.X,
                      origin=(0.0, 0.0, 0.0), length=1e-6, width=1e-6,
                      thickness=1e-6, name="s")
        with pytest.raises(ValueError):
            CapacitanceModel().segment_ground_capacitance(seg, layout)
