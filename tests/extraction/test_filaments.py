"""Filament subdivision for skin/proximity effect."""

import pytest

from repro.constants import RHO_COPPER, skin_depth
from repro.extraction.filaments import (
    FilamentGrid,
    filaments_for_skin_depth,
    max_useful_frequency,
)
from repro.geometry.segment import Direction, Segment


def make_segment(width=4e-6, thickness=2e-6):
    return Segment(net="s", layer="M6", direction=Direction.X,
                   origin=(0.0, 0.0, 1e-6), length=100e-6,
                   width=width, thickness=thickness, name="seg")


class TestFilamentGrid:
    def test_count(self):
        assert FilamentGrid(3, 2).count == 6

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            FilamentGrid(0, 1)

    def test_offsets_centered_and_symmetric(self):
        offsets = FilamentGrid(3, 1).offsets(6e-6, 2e-6)
        ws = sorted(dw for dw, _ in offsets)
        assert ws == pytest.approx([-2e-6, 0.0, 2e-6])
        assert all(dt == 0.0 for _, dt in offsets)

    def test_single_filament_is_identity(self):
        seg = make_segment()
        assert FilamentGrid(1, 1).split_segment(seg) == [seg]

    def test_split_preserves_cross_section(self):
        seg = make_segment()
        fils = FilamentGrid(4, 2).split_segment(seg)
        assert len(fils) == 8
        total_area = sum(f.cross_section_area for f in fils)
        assert total_area == pytest.approx(seg.cross_section_area)

    def test_split_filaments_tile_parent_box(self):
        seg = make_segment()
        fils = FilamentGrid(2, 2).split_segment(seg)
        lo_y = min(f.origin[1] for f in fils)
        hi_y = max(f.end[1] for f in fils)
        lo_z = min(f.origin[2] for f in fils)
        hi_z = max(f.end[2] for f in fils)
        assert lo_y == pytest.approx(seg.origin[1])
        assert hi_y == pytest.approx(seg.end[1])
        assert lo_z == pytest.approx(seg.origin[2])
        assert hi_z == pytest.approx(seg.end[2])

    def test_split_preserves_span_and_net(self):
        seg = make_segment()
        for f in FilamentGrid(3, 3).split_segment(seg):
            assert f.axis_start == seg.axis_start
            assert f.axis_end == seg.axis_end
            assert f.net == seg.net
            assert f.layer == seg.layer

    def test_y_direction_split(self):
        seg = Segment(net="s", layer="M6", direction=Direction.Y,
                      origin=(0.0, 0.0, 1e-6), length=100e-6,
                      width=4e-6, thickness=2e-6, name="seg")
        fils = FilamentGrid(2, 1).split_segment(seg)
        xs = sorted(f.origin[0] for f in fils)
        assert xs[1] - xs[0] == pytest.approx(2e-6)


class TestSkinDepthSizing:
    def test_dc_gives_single_filament(self):
        grid = filaments_for_skin_depth(4e-6, 2e-6, 0.0, RHO_COPPER)
        assert grid.count == 1

    def test_low_frequency_single_filament(self):
        grid = filaments_for_skin_depth(2e-6, 1e-6, 1e8, RHO_COPPER)
        assert grid.count == 1

    def test_high_frequency_subdivides(self):
        grid = filaments_for_skin_depth(4e-6, 2e-6, 5e10, RHO_COPPER)
        assert grid.num_width > 1

    def test_counts_capped(self):
        grid = filaments_for_skin_depth(
            100e-6, 50e-6, 1e12, RHO_COPPER, max_per_axis=5
        )
        assert grid.num_width == 5
        assert grid.num_thickness == 5

    def test_filament_size_tracks_skin_depth(self):
        f = 2e10
        grid = filaments_for_skin_depth(8e-6, 1e-6, f, RHO_COPPER)
        delta = skin_depth(f, RHO_COPPER)
        assert 8e-6 / grid.num_width <= 2.0 * delta * 1.001

    def test_max_useful_frequency_consistency(self):
        f = max_useful_frequency(4e-6, 2e-6, RHO_COPPER)
        # At that frequency the skin depth equals half the min dimension.
        assert skin_depth(f, RHO_COPPER) == pytest.approx(1e-6, rel=1e-6)
