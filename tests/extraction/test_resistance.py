"""Resistance extraction."""

import pytest

from repro.extraction.filaments import FilamentGrid
from repro.extraction.resistance import (
    MIN_VIA_RESISTANCE,
    VIA_CUT_RESISTANCE,
    resistivity_of,
    segment_resistance,
    via_resistance,
)
from repro.geometry.layout import Via
from repro.geometry.segment import Direction, Segment, default_layer_stack


@pytest.fixture
def layer():
    return default_layer_stack(6)[-1]


def make_segment(layer, length=100e-6, width=2e-6, thickness=None):
    return Segment(net="s", layer=layer.name, direction=Direction.X,
                   origin=(0.0, 0.0, layer.z_bottom), length=length,
                   width=width, thickness=thickness or layer.thickness,
                   name="seg")


class TestSegmentResistance:
    def test_squares_times_sheet(self, layer):
        seg = make_segment(layer, length=100e-6, width=2e-6)
        assert segment_resistance(seg, layer) == pytest.approx(
            layer.sheet_resistance * 50.0
        )

    def test_scales_linearly_with_length(self, layer):
        r1 = segment_resistance(make_segment(layer, length=50e-6), layer)
        r2 = segment_resistance(make_segment(layer, length=100e-6), layer)
        assert r2 == pytest.approx(2 * r1)

    def test_via_segment_rejected(self, layer):
        seg = Segment(net="s", layer=layer.name, direction=Direction.Z,
                      origin=(0, 0, 0), length=1e-6, width=1e-6,
                      thickness=1e-6, name="v")
        with pytest.raises(ValueError):
            segment_resistance(seg, layer)

    def test_filament_parallel_combination_matches_parent(self, layer):
        seg = make_segment(layer, width=4e-6)
        parent_r = segment_resistance(seg, layer)
        fils = FilamentGrid(4, 3).split_segment(seg)
        conductance = sum(1.0 / segment_resistance(f, layer) for f in fils)
        assert 1.0 / conductance == pytest.approx(parent_r, rel=1e-9)

    def test_resistivity_of_layer(self, layer):
        assert resistivity_of(layer) == pytest.approx(
            layer.sheet_resistance * layer.thickness
        )


class TestViaResistance:
    def test_single_cut(self):
        via = Via(net="v", x=0, y=0, layer_bottom="M5", layer_top="M6",
                  width=0.5e-6)
        assert via_resistance(via) == pytest.approx(VIA_CUT_RESISTANCE)

    def test_wide_via_cut_array(self):
        via = Via(net="v", x=0, y=0, layer_bottom="M5", layer_top="M6",
                  width=2e-6)
        # 4x4 cuts in parallel.
        assert via_resistance(via) == pytest.approx(
            max(VIA_CUT_RESISTANCE / 16, MIN_VIA_RESISTANCE)
        )

    def test_floor_applies(self):
        via = Via(net="v", x=0, y=0, layer_bottom="M5", layer_top="M6",
                  width=50e-6)
        assert via_resistance(via) == MIN_VIA_RESISTANCE
