"""Partial-inductance formulas: analytic cross-checks and properties."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import MU0
from repro.extraction.inductance import (
    mutual_between_segments,
    mutual_inductance_bars,
    mutual_inductance_bars_batch,
    mutual_inductance_filaments,
    mutual_inductance_filaments_grover,
    self_inductance_bar,
)
from repro.geometry.segment import Direction, Segment


class TestSelfInductance:
    def test_typical_onchip_value(self):
        # ~1.4 nH for a 1 mm x 2 um x 1 um line: the textbook rule of thumb
        # "about 1.4 pH/um" for on-chip wires.
        value = self_inductance_bar(1e-3, 2e-6, 1e-6)
        assert value == pytest.approx(1.40e-9, rel=0.02)

    def test_grows_superlinearly_with_length(self):
        l1 = self_inductance_bar(100e-6, 2e-6, 1e-6)
        l2 = self_inductance_bar(200e-6, 2e-6, 1e-6)
        assert l2 > 2 * l1  # the log term grows too

    def test_wider_wire_has_less_inductance(self):
        narrow = self_inductance_bar(1e-3, 1e-6, 1e-6)
        wide = self_inductance_bar(1e-3, 10e-6, 1e-6)
        assert wide < narrow

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            self_inductance_bar(0.0, 1e-6, 1e-6)

    @given(
        length=st.floats(10e-6, 10e-3),
        width=st.floats(0.1e-6, 20e-6),
        thickness=st.floats(0.1e-6, 5e-6),
    )
    @settings(max_examples=60)
    def test_always_positive(self, length, width, thickness):
        assert self_inductance_bar(length, width, thickness) > 0.0


class TestFilamentMutual:
    def test_matches_grover_closed_form(self):
        for length, rho in [(1e-3, 5e-6), (200e-6, 2e-6), (2e-3, 50e-6)]:
            a = mutual_inductance_filaments(0, length, 0, length, rho)
            b = mutual_inductance_filaments_grover(length, rho)
            assert a == pytest.approx(b, rel=1e-12)

    def test_long_filament_asymptote(self):
        # l >> d: M -> (mu0/2pi) l [ln(2l/d) - 1].
        length, rho = 10e-3, 1e-6
        expected = (MU0 / (2 * math.pi)) * length * (
            math.log(2 * length / rho) - 1.0
        )
        value = mutual_inductance_filaments(0, length, 0, length, rho)
        assert value == pytest.approx(expected, rel=1e-3)

    def test_reciprocity_with_offsets(self):
        a = mutual_inductance_filaments(0, 1e-3, 0.4e-3, 1.2e-3, 7e-6)
        b = mutual_inductance_filaments(0.4e-3, 1.2e-3, 0, 1e-3, 7e-6)
        assert a == pytest.approx(b, rel=1e-12)

    def test_translation_invariance(self):
        shift = 3.3e-3
        a = mutual_inductance_filaments(0, 1e-3, 0.2e-3, 0.8e-3, 5e-6)
        b = mutual_inductance_filaments(shift, shift + 1e-3,
                                        shift + 0.2e-3, shift + 0.8e-3, 5e-6)
        assert a == pytest.approx(b, rel=1e-9)

    def test_decays_with_distance(self):
        values = [
            mutual_inductance_filaments(0, 1e-3, 0, 1e-3, d)
            for d in (1e-6, 3e-6, 10e-6, 30e-6, 100e-6)
        ]
        assert all(a > b > 0 for a, b in zip(values, values[1:]))

    def test_superposition_over_subsegments(self):
        # M(total) = M(first half) + M(second half) for a split filament.
        whole = mutual_inductance_filaments(0, 1e-3, 0, 1e-3, 5e-6)
        first = mutual_inductance_filaments(0, 0.5e-3, 0, 1e-3, 5e-6)
        second = mutual_inductance_filaments(0.5e-3, 1e-3, 0, 1e-3, 5e-6)
        assert whole == pytest.approx(first + second, rel=1e-12)

    def test_collinear_non_overlapping(self):
        value = mutual_inductance_filaments(0, 1e-3, 1.5e-3, 2.5e-3, 0.0)
        assert value > 0.0

    def test_collinear_overlapping_rejected(self):
        with pytest.raises(ValueError):
            mutual_inductance_filaments(0, 1e-3, 0.5e-3, 1.5e-3, 0.0)

    def test_negative_rho_rejected(self):
        with pytest.raises(ValueError):
            mutual_inductance_filaments(0, 1e-3, 0, 1e-3, -1e-6)

    def test_vectorized_matches_scalar(self):
        rho = np.array([1e-6, 5e-6, 20e-6])
        vec = mutual_inductance_filaments(0, 1e-3, 0, 1e-3, rho)
        for k, r in enumerate(rho):
            assert vec[k] == pytest.approx(
                mutual_inductance_filaments(0, 1e-3, 0, 1e-3, float(r))
            )

    @given(
        length=st.floats(50e-6, 5e-3),
        rho=st.floats(0.5e-6, 200e-6),
        offset=st.floats(-2e-3, 2e-3),
    )
    @settings(max_examples=80)
    def test_mutual_below_geometric_mean_of_selfs(self, length, rho, offset):
        # Physical bound: coupling coefficient < 1 for distinct filaments.
        m = mutual_inductance_filaments(
            0, length, offset, offset + length, rho
        )
        self_l = self_inductance_bar(length, 0.5e-6, 0.5e-6)
        assert abs(m) < self_l

    @given(
        rho1=st.floats(1e-6, 50e-6),
        rho2=st.floats(1e-6, 50e-6),
    )
    @settings(max_examples=40)
    def test_monotone_decay_property(self, rho1, rho2):
        lo, hi = sorted((rho1, rho2))
        if hi - lo < 1e-9:
            return
        m_near = mutual_inductance_filaments(0, 1e-3, 0, 1e-3, lo)
        m_far = mutual_inductance_filaments(0, 1e-3, 0, 1e-3, hi)
        assert m_near >= m_far


class TestBarMutual:
    def test_converges_with_subdivision(self):
        args = (0, 1e-3, 0, 1e-3, 4e-6, 0.0, 2e-6, 1e-6, 2e-6, 1e-6)
        values = [mutual_inductance_bars(*args, subdivisions=n)
                  for n in (1, 2, 3, 5, 7)]
        diffs = [abs(a - b) for a, b in zip(values, values[1:])]
        assert diffs[-1] < diffs[0]
        assert values[-1] == pytest.approx(values[-2], rel=1e-3)

    def test_far_bars_match_center_filament(self):
        far = mutual_inductance_bars(
            0, 1e-3, 0, 1e-3, 100e-6, 0.0, 2e-6, 1e-6, 2e-6, 1e-6,
            subdivisions=3,
        )
        fil = mutual_inductance_filaments(0, 1e-3, 0, 1e-3, 100e-6)
        assert far == pytest.approx(fil, rel=1e-4)

    def test_auto_subdivision_selects_by_distance(self):
        near = mutual_inductance_bars(
            0, 1e-3, 0, 1e-3, 3e-6, 0.0, 2e-6, 1e-6, 2e-6, 1e-6
        )
        near_fine = mutual_inductance_bars(
            0, 1e-3, 0, 1e-3, 3e-6, 0.0, 2e-6, 1e-6, 2e-6, 1e-6,
            subdivisions=3,
        )
        assert near == pytest.approx(near_fine, rel=1e-12)

    def test_rejects_bad_subdivision(self):
        with pytest.raises(ValueError):
            mutual_inductance_bars(
                0, 1e-3, 0, 1e-3, 4e-6, 0, 1e-6, 1e-6, 1e-6, 1e-6,
                subdivisions=0,
            )


class TestSegmentMutual:
    def seg(self, direction, origin, length=200e-6):
        return Segment(net="s", layer="M6", direction=direction,
                       origin=origin, length=length, width=2e-6,
                       thickness=1e-6, name="t")

    def test_parallel_segments(self):
        a = self.seg(Direction.X, (0.0, 0.0, 1e-6))
        b = self.seg(Direction.X, (0.0, 10e-6, 1e-6))
        m = mutual_between_segments(a, b)
        expected = mutual_inductance_filaments(0, 200e-6, 0, 200e-6, 10e-6)
        assert m == pytest.approx(expected, rel=0.02)

    def test_orthogonal_rejected(self):
        a = self.seg(Direction.X, (0.0, 0.0, 1e-6))
        b = self.seg(Direction.Y, (0.0, 10e-6, 1e-6))
        with pytest.raises(ValueError):
            mutual_between_segments(a, b)

    def test_symmetric_in_arguments(self):
        a = self.seg(Direction.Y, (0.0, 0.0, 1e-6))
        b = self.seg(Direction.Y, (6e-6, 50e-6, 1e-6), length=100e-6)
        assert mutual_between_segments(a, b) == pytest.approx(
            mutual_between_segments(b, a), rel=1e-12
        )


class TestBarMutualBatch:
    """Batched close-pair kernel must be bit-identical to the scalar one."""

    @staticmethod
    def random_pairs(seed, count):
        rng = np.random.default_rng(seed)
        start1 = rng.uniform(0, 100e-6, count)
        end1 = start1 + rng.uniform(20e-6, 300e-6, count)
        start2 = rng.uniform(0, 100e-6, count)
        end2 = start2 + rng.uniform(20e-6, 300e-6, count)
        d_width = rng.uniform(1e-6, 30e-6, count)
        d_thick = rng.uniform(0.0, 5e-6, count)
        width1 = rng.uniform(0.5e-6, 10e-6, count)
        thick1 = rng.uniform(0.2e-6, 2e-6, count)
        width2 = rng.uniform(0.5e-6, 10e-6, count)
        thick2 = rng.uniform(0.2e-6, 2e-6, count)
        return (start1, end1, start2, end2, d_width, d_thick,
                width1, thick1, width2, thick2)

    @pytest.mark.parametrize("subdivisions", [1, 2, 3, 5])
    def test_bit_identical_to_scalar(self, subdivisions):
        args = self.random_pairs(seed=subdivisions, count=32)
        batched = mutual_inductance_bars_batch(
            *args, subdivisions=subdivisions
        )
        for k in range(32):
            scalar = mutual_inductance_bars(
                *(a[k] for a in args), subdivisions=subdivisions
            )
            assert batched[k] == scalar  # exact, not approx

    def test_single_pair(self):
        m = mutual_inductance_bars_batch(
            np.array([0.0]), np.array([1e-3]),
            np.array([0.0]), np.array([1e-3]),
            np.array([4e-6]), np.array([0.0]),
            np.array([1e-6]), np.array([1e-6]),
            np.array([1e-6]), np.array([1e-6]),
            subdivisions=3,
        )
        scalar = mutual_inductance_bars(
            0.0, 1e-3, 0.0, 1e-3, 4e-6, 0.0,
            1e-6, 1e-6, 1e-6, 1e-6, subdivisions=3,
        )
        assert m.shape == (1,)
        assert m[0] == scalar

    def test_rejects_bad_subdivisions(self):
        with pytest.raises(ValueError):
            mutual_inductance_bars_batch(
                np.zeros(1), np.ones(1), np.zeros(1), np.ones(1),
                np.full(1, 4e-6), np.zeros(1),
                np.full(1, 1e-6), np.full(1, 1e-6),
                np.full(1, 1e-6), np.full(1, 1e-6),
                subdivisions=0,
            )
