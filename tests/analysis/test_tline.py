"""Transmission-line regime classification (paper ref [1] criteria)."""

import pytest

from repro.analysis.tline import (
    TransmissionLineAssessment,
    WireRegime,
    assess_from_extraction,
    assess_line,
)

# Representative on-chip global wire: 50 ohm/mm, 0.5 nH/mm, 0.2 pF/mm.
R_PUL = 50e3  # ohm/m
L_PUL = 0.5e-6  # H/m
C_PUL = 0.2e-9  # F/m


class TestAssessLine:
    def test_short_wire_is_not_inductive(self):
        out = assess_line(50e-6, R_PUL, L_PUL, C_PUL, rise_time=100e-12)
        assert out.regime in (WireRegime.LUMPED, WireRegime.RC)
        assert not out.inductance_matters

    def test_long_wide_wire_is_inductive(self):
        # Fast edge, low-resistance wide wire, millimeter length: the
        # paper's "long and wide wires exhibit inductive behavior".
        out = assess_line(3e-3, 10e3, L_PUL, C_PUL, rise_time=30e-12)
        assert out.regime == WireRegime.RLC
        assert out.inductance_matters

    def test_very_long_wire_degrades_to_rc(self):
        # Past the attenuation length, resistance wins again.
        out = assess_line(50e-3, R_PUL, L_PUL, C_PUL, rise_time=30e-12)
        assert out.regime == WireRegime.RC

    def test_bounds_ordering(self):
        out = assess_line(1e-3, 10e3, L_PUL, C_PUL, rise_time=30e-12)
        assert out.lower_bound < out.upper_bound

    def test_faster_edges_widen_the_window(self):
        slow = assess_line(1e-3, R_PUL, L_PUL, C_PUL, rise_time=300e-12)
        fast = assess_line(1e-3, R_PUL, L_PUL, C_PUL, rise_time=30e-12)
        assert fast.lower_bound < slow.lower_bound

    def test_characteristic_impedance(self):
        out = assess_line(1e-3, R_PUL, L_PUL, C_PUL, rise_time=50e-12)
        assert out.characteristic_impedance == pytest.approx(
            (L_PUL / C_PUL) ** 0.5
        )

    def test_time_of_flight(self):
        out = assess_line(1e-3, R_PUL, L_PUL, C_PUL, rise_time=50e-12)
        assert out.time_of_flight == pytest.approx(
            1e-3 * (L_PUL * C_PUL) ** 0.5
        )

    def test_damping_factor_scales_with_length(self):
        short = assess_line(0.5e-3, R_PUL, L_PUL, C_PUL, rise_time=50e-12)
        long = assess_line(2e-3, R_PUL, L_PUL, C_PUL, rise_time=50e-12)
        assert long.damping_factor == pytest.approx(
            4 * short.damping_factor
        )

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            assess_line(0.0, R_PUL, L_PUL, C_PUL, 1e-12)
        with pytest.raises(ValueError):
            assess_line(1e-3, R_PUL, -L_PUL, C_PUL, 1e-12)


class TestAssessFromExtraction:
    def test_wraps_loop_extraction(self, signal_grid_structure):
        import numpy as np

        from repro.loop.extractor import LoopPort, extract_loop_impedance

        layout, ports = signal_grid_structure
        port = LoopPort(
            signal=ports["driver"],
            reference=ports["gnd_driver"],
            short_signal=ports["receiver"],
            short_reference=ports["gnd_receiver"],
        )
        extraction = extract_loop_impedance(
            layout, port, np.logspace(8, 10.5, 5),
            max_segment_length=150e-6,
        )
        out = assess_from_extraction(
            extraction, length=300e-6, c_total=80e-15, rise_time=30e-12
        )
        assert isinstance(out, TransmissionLineAssessment)
        assert out.characteristic_impedance > 0
        # The 300-um test structure is resistive at this drive.
        assert out.regime in (WireRegime.RC, WireRegime.LUMPED)
