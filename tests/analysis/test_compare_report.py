"""Waveform comparison and table formatting."""

import numpy as np
import pytest

from repro.analysis.compare import compare_waveforms
from repro.analysis.report import format_table


class TestCompare:
    def test_identical_waveforms(self):
        t = np.linspace(0, 1, 11)
        v = np.sin(t)
        cmp = compare_waveforms(t, v, t, v)
        assert cmp.max_error == 0.0
        assert cmp.rms_error == 0.0

    def test_constant_offset(self):
        t = np.linspace(0, 1, 11)
        cmp = compare_waveforms(t, np.ones(11), t, np.zeros(11))
        assert cmp.max_error == pytest.approx(1.0)
        assert cmp.rms_error == pytest.approx(1.0)

    def test_different_time_bases_interpolated(self):
        t1 = np.linspace(0, 1, 11)
        t2 = np.linspace(0, 1, 101)
        cmp = compare_waveforms(t1, t1, t2, t2)
        assert cmp.max_error < 1e-12

    def test_reports_error_location(self):
        t = np.linspace(0, 1, 101)
        v2 = np.zeros(101)
        v1 = np.zeros(101)
        v1[50] = 1.0  # spike at t=0.5
        cmp = compare_waveforms(t, v1, t, v2)
        assert cmp.max_error_time == pytest.approx(0.5)

    def test_disjoint_time_bases_rejected(self):
        with pytest.raises(ValueError):
            compare_waveforms(
                np.array([0.0, 1.0]), np.zeros(2),
                np.array([2.0, 3.0]), np.zeros(2),
            )


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["a", "bbbb"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_title(self):
        out = format_table(["x"], [[1]], title="Table 1")
        assert out.splitlines()[0] == "Table 1"

    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        out = format_table(["a", "b"], [])
        assert "a" in out


class TestUnsortedGrids:
    """Regression: np.interp silently returns garbage on non-ascending
    abscissae, so compare_waveforms must sort both series first."""

    def test_descending_time_base_matches_ascending(self):
        t = np.linspace(0, 1e-9, 101)
        va = np.sin(2e9 * 2 * np.pi * t)
        vb = va + 0.01
        want = compare_waveforms(t, va, t, vb)
        got = compare_waveforms(t[::-1], va[::-1], t[::-1], vb[::-1])
        assert got.max_error == pytest.approx(want.max_error)
        assert got.rms_error == pytest.approx(want.rms_error)
        assert got.max_error_time == pytest.approx(want.max_error_time)

    def test_shuffled_time_base_matches_sorted(self):
        rng = np.random.default_rng(42)
        t = np.linspace(0, 1e-9, 101)
        va = np.cos(1e9 * 2 * np.pi * t)
        vb = va * 1.02
        perm = rng.permutation(t.size)
        want = compare_waveforms(t, va, t, vb)
        got = compare_waveforms(t[perm], va[perm], t, vb)
        assert got.max_error == pytest.approx(want.max_error)
        assert got.rms_error == pytest.approx(want.rms_error)

    def test_descending_b_only(self):
        # Mixed orientation: A ascending, B from a high-to-low sweep.
        ta = np.linspace(0, 1e-9, 80)
        tb = np.linspace(1e-9, 0, 120)
        va = ta * 1e9
        vb = tb * 1e9
        cmp = compare_waveforms(ta, va, tb, vb)
        assert cmp.max_error == pytest.approx(0.0, abs=1e-12)
