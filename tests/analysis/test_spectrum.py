"""Spectral helpers for extraction-frequency selection."""

import numpy as np
import pytest

from repro.analysis.spectrum import (
    edge_spectrum,
    significant_frequency,
    spectral_knee,
)


class TestSignificantFrequency:
    def test_rule_of_thumb(self):
        assert significant_frequency(34e-12) == pytest.approx(1e10)

    def test_faster_edge_higher_knee(self):
        assert significant_frequency(10e-12) > significant_frequency(100e-12)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            significant_frequency(0.0)


class TestEdgeSpectrum:
    def test_sine_peaks_at_its_frequency(self):
        t = np.linspace(0, 10e-9, 1000, endpoint=False)
        v = np.sin(2 * np.pi * 1e9 * t)
        freqs, amps = edge_spectrum(t, v)
        assert freqs[int(np.argmax(amps))] == pytest.approx(1e9, rel=0.01)

    def test_requires_uniform_time_base(self):
        t = np.array([0.0, 1.0, 3.0, 4.0])
        with pytest.raises(ValueError):
            edge_spectrum(t, np.zeros(4))

    def test_requires_enough_samples(self):
        with pytest.raises(ValueError):
            edge_spectrum(np.zeros(2), np.zeros(2))

    def test_single_sided_amplitude_calibration(self):
        # Regression: the spectrum is single-sided, so interior bins must
        # be doubled -- a pure on-grid sinusoid of amplitude A has to show
        # a bin of height A, not A/2.
        amplitude = 0.7
        t = np.linspace(0, 8e-9, 512, endpoint=False)
        v = amplitude * np.sin(2 * np.pi * 1e9 * t)
        freqs, amps = edge_spectrum(t, v)
        assert amps.max() == pytest.approx(amplitude, rel=1e-9)

    def test_nyquist_bin_is_not_doubled(self):
        # The rfft keeps Nyquist once for even N; doubling it would
        # overstate its amplitude by 2x.
        n = 64
        t = np.arange(n) * 1e-12
        v = 0.3 * np.cos(np.pi * np.arange(n))  # exactly at Nyquist
        freqs, amps = edge_spectrum(t, v)
        assert amps[-1] == pytest.approx(0.3, rel=1e-9)

    def test_parseval_consistency(self):
        # Summed single-sided power equals the waveform's AC power.
        rng = np.random.default_rng(7)
        n = 256
        t = np.arange(n) * 1e-12
        v = rng.standard_normal(n)
        _, amps = edge_spectrum(t, v)
        ac = v - v.mean()
        power = np.mean(ac**2)
        # DC once, Nyquist once, interior bins carry half their doubled
        # amplitude squared.
        folded = amps[0] ** 2 + amps[-1] ** 2 + np.sum(amps[1:-1] ** 2) / 2
        assert folded == pytest.approx(power, rel=1e-9)


class TestSpectralKnee:
    def test_faster_edge_has_higher_knee(self):
        t = np.linspace(0, 4e-9, 4000, endpoint=False)

        def edge(rise):
            return np.clip((t - 1e-9) / rise, 0.0, 1.0)

        knee_fast = spectral_knee(t, edge(20e-12))
        knee_slow = spectral_knee(t, edge(200e-12))
        assert knee_fast > knee_slow

    def test_fraction_validated(self):
        t = np.linspace(0, 1e-9, 100, endpoint=False)
        with pytest.raises(ValueError):
            spectral_knee(t, np.sin(t * 1e10), energy_fraction=1.5)

    def test_dc_waveform_rejected(self):
        t = np.linspace(0, 1e-9, 100, endpoint=False)
        with pytest.raises(ValueError):
            spectral_knee(t, np.ones(100))
