"""Worst-case crosstalk alignment."""

import numpy as np
import pytest

from repro.analysis.crosstalk import (
    simulate_aggressor_responses,
    worst_case_alignment,
)


def gaussian_pulse(times, center, amplitude, sigma=20e-12):
    return amplitude * np.exp(-((times - center) ** 2) / (2 * sigma**2))


@pytest.fixture
def time_base():
    return np.linspace(0, 1e-9, 501)


class TestAlignment:
    def test_aligns_two_pulses_when_windows_allow(self, time_base):
        t = time_base
        responses = {
            "a": gaussian_pulse(t, 0.2e-9, 0.05),
            "b": gaussian_pulse(t, 0.5e-9, 0.04),
        }
        windows = {"a": (0.0, 0.6e-9), "b": (-0.4e-9, 0.3e-9)}
        result = worst_case_alignment(t, responses, windows)
        # Free alignment: peaks stack -> 90 mV.
        assert result.peak_noise == pytest.approx(0.09, rel=0.02)

    def test_respects_windows(self, time_base):
        t = time_base
        responses = {
            "a": gaussian_pulse(t, 0.2e-9, 0.05),
            "b": gaussian_pulse(t, 0.6e-9, 0.05),
        }
        # b cannot move: peaks cannot coincide (0.4 ns apart, sigma 20 ps).
        windows = {"a": (0.0, 0.1e-9), "b": (0.0, 0.0)}
        result = worst_case_alignment(t, responses, windows)
        assert result.peak_noise < 0.06
        assert windows["a"][0] <= result.offsets["a"] <= windows["a"][1]
        assert result.offsets["b"] == 0.0

    def test_zero_windows_reproduce_direct_sum(self, time_base):
        t = time_base
        responses = {
            "a": gaussian_pulse(t, 0.3e-9, 0.03),
            "b": gaussian_pulse(t, 0.35e-9, 0.02),
        }
        windows = {"a": (0.0, 0.0), "b": (0.0, 0.0)}
        result = worst_case_alignment(t, responses, windows)
        direct = responses["a"] + responses["b"]
        assert result.peak_noise == pytest.approx(
            float(np.max(np.abs(direct))), rel=1e-9
        )

    def test_opposite_polarity_peaks_do_not_stack(self, time_base):
        t = time_base
        responses = {
            "a": gaussian_pulse(t, 0.3e-9, 0.05),
            "b": gaussian_pulse(t, 0.3e-9, -0.05),
        }
        windows = {"a": (0.0, 0.0), "b": (0.0, 0.0)}
        result = worst_case_alignment(t, responses, windows)
        assert result.peak_noise < 1e-6  # they cancel

    def test_name_mismatch_rejected(self, time_base):
        with pytest.raises(ValueError):
            worst_case_alignment(
                time_base,
                {"a": np.zeros_like(time_base)},
                {"b": (0.0, 0.0)},
            )

    def test_bad_window_rejected(self, time_base):
        with pytest.raises(ValueError):
            worst_case_alignment(
                time_base,
                {"a": np.zeros_like(time_base)},
                {"a": (1e-9, 0.0)},
            )


class TestSimulatedResponses:
    def test_coupled_bus_worst_case_exceeds_simultaneous(self):
        """On a real coupled bus, window freedom can beat simultaneous
        switching when the individual peaks are staggered."""
        from repro.circuit.netlist import GROUND, Circuit
        from repro.circuit.waveforms import Ramp
        from repro.geometry.structures import build_bus
        from repro.peec.model import PEECOptions, build_peec_model

        layout, ports = build_bus(num_signals=3, length=300e-6, pitch=3e-6,
                                  wire_width=1e-6)
        aggressors = ["bus0", "bus2"]
        victim_net = "bus1"

        def build(active: str):
            model = build_peec_model(
                layout, PEECOptions(max_segment_length=150e-6)
            )
            circuit = model.circuit
            for net in ("bus0", "bus1", "bus2"):
                n_in = model.node_at(ports[f"{net}:in"])
                n_out = model.node_at(ports[f"{net}:out"])
                circuit.add_capacitor(f"Cl_{net}", n_out, GROUND, 10e-15)
                if net == active:
                    # Different intrinsic delays per aggressor.
                    delay = 20e-12 if net == "bus0" else 120e-12
                    circuit.add_vsource(f"V_{net}", f"s_{net}", GROUND,
                                        Ramp(0, 1.2, delay, 30e-12))
                    circuit.add_resistor(f"Rd_{net}", f"s_{net}", n_in, 60.0)
                else:
                    circuit.add_resistor(f"Rd_{net}", n_in, GROUND, 60.0)
            for end in ("in", "out"):
                circuit.add_resistor(
                    f"Rg_{end}", model.node_at(ports[f"gnd:{end}"]),
                    GROUND, 0.1,
                )
            build.victim_node = model.node_at(ports[f"{victim_net}:out"])
            return circuit

        circuit = build("bus0")  # prime victim_node
        victim = build.victim_node
        times, responses = simulate_aggressor_responses(
            build, aggressors, victim, 0.6e-9, 2e-12
        )
        free = worst_case_alignment(
            times, responses,
            {"bus0": (0.0, 0.3e-9), "bus2": (-0.3e-9, 0.3e-9)},
        )
        fixed = worst_case_alignment(
            times, responses, {"bus0": (0.0, 0.0), "bus2": (0.0, 0.0)},
        )
        assert free.peak_noise >= fixed.peak_noise
        assert free.peak_noise > 1e-3


class TestUnsortedTimeBase:
    """Regression: worst_case_alignment interpolates shifted responses
    with np.interp, which silently corrupts on non-ascending times."""

    def test_descending_times_match_ascending(self, time_base):
        t = time_base
        responses = {
            "a": gaussian_pulse(t, 0.2e-9, 0.05),
            "b": gaussian_pulse(t, 0.5e-9, 0.04),
        }
        windows = {"a": (0.0, 0.6e-9), "b": (-0.4e-9, 0.3e-9)}
        want = worst_case_alignment(t, responses, windows)
        got = worst_case_alignment(
            t[::-1], {k: v[::-1] for k, v in responses.items()}, windows
        )
        assert got.peak_noise == pytest.approx(want.peak_noise)
        assert got.offsets == pytest.approx(want.offsets)

    def test_shuffled_times_match_sorted(self, time_base):
        t = time_base
        rng = np.random.default_rng(7)
        perm = rng.permutation(t.size)
        responses = {
            "a": gaussian_pulse(t, 0.3e-9, 0.03),
            "b": gaussian_pulse(t, 0.35e-9, 0.02),
        }
        windows = {"a": (0.0, 0.0), "b": (0.0, 0.0)}
        want = worst_case_alignment(t, responses, windows)
        got = worst_case_alignment(
            t[perm], {k: v[perm] for k, v in responses.items()}, windows
        )
        assert got.peak_noise == pytest.approx(want.peak_noise)
