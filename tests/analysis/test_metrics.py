"""Waveform metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import (
    delay_50,
    overshoot,
    peak_noise,
    rise_time,
    settling_time,
    skew,
    threshold_crossing,
    undershoot,
)


class TestThresholdCrossing:
    def test_linear_interpolation(self):
        t = np.array([0.0, 1.0, 2.0])
        v = np.array([0.0, 1.0, 2.0])
        assert threshold_crossing(t, v, 0.5) == pytest.approx(0.5)
        assert threshold_crossing(t, v, 1.5) == pytest.approx(1.5)

    def test_direction_filter(self):
        t = np.linspace(0, 4, 5)
        v = np.array([0.0, 1.0, 0.0, 1.0, 0.0])
        assert threshold_crossing(t, v, 0.5, rising=True) == pytest.approx(0.5)
        assert threshold_crossing(t, v, 0.5, rising=False) == pytest.approx(1.5)

    def test_start_window(self):
        t = np.linspace(0, 4, 5)
        v = np.array([0.0, 1.0, 0.0, 1.0, 0.0])
        late = threshold_crossing(t, v, 0.5, rising=True, start=1.0)
        assert late == pytest.approx(2.5)

    def test_no_crossing_raises(self):
        t = np.linspace(0, 1, 5)
        v = np.full(5, 0.2)
        with pytest.raises(ValueError):
            threshold_crossing(t, v, 0.5)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            threshold_crossing(np.zeros(3), np.zeros(4), 0.5)

    @given(level=st.floats(0.05, 0.95))
    @settings(max_examples=40)
    def test_crossing_brackets_level(self, level):
        t = np.linspace(0, 1, 101)
        v = t**2  # monotone rising
        tc = threshold_crossing(t, v, level)
        assert tc == pytest.approx(np.sqrt(level), abs=0.02)

    def test_tangent_touch_is_not_a_crossing(self):
        # Regression: a waveform that merely touches the level at one
        # sample and retreats never crosses it; the old >=-based flip
        # detection reported a spurious crossing at the touch.
        t = np.linspace(0, 4, 5)
        v = np.array([0.0, 0.5, 0.0, 0.0, 0.0])  # touches 0.5, no cross
        with pytest.raises(ValueError):
            threshold_crossing(t, v, 0.5)

    def test_exact_sample_on_level_crossing(self):
        # Sitting exactly on the level while passing through IS a
        # crossing, timed at the first on-level sample.
        t = np.linspace(0, 3, 4)
        v = np.array([0.0, 0.5, 1.0, 1.0])
        assert threshold_crossing(t, v, 0.5) == pytest.approx(1.0)

    def test_touch_then_later_real_crossing(self):
        # The tangent touch must be skipped in favor of the genuine
        # crossing further on.
        t = np.linspace(0, 5, 6)
        v = np.array([0.0, 0.5, 0.0, 0.0, 1.0, 1.0])
        tc = threshold_crossing(t, v, 0.5, rising=True)
        assert tc == pytest.approx(3.5)

    def test_start_filters_on_crossing_time(self):
        # A crossing whose interpolated time falls before ``start`` is
        # skipped even though its bracketing samples straddle ``start``.
        t = np.linspace(0, 4, 5)
        v = np.array([0.0, 1.0, 0.0, 1.0, 0.0])
        late = threshold_crossing(t, v, 0.5, rising=True, start=0.75)
        assert late == pytest.approx(2.5)


class TestDelays:
    def test_delay_50_ideal_shift(self):
        t = np.linspace(0, 10e-9, 1001)
        vin = np.clip((t - 1e-9) / 1e-9, 0, 1)
        vout = np.clip((t - 3e-9) / 1e-9, 0, 1)
        assert delay_50(t, vin, vout, 1.0) == pytest.approx(2e-9, rel=1e-6)

    def test_delay_with_inverting_output(self):
        t = np.linspace(0, 10e-9, 1001)
        vin = np.clip((t - 1e-9) / 1e-9, 0, 1)
        vout = 1.0 - np.clip((t - 3e-9) / 1e-9, 0, 1)
        assert delay_50(t, vin, vout, 1.0) == pytest.approx(2e-9, rel=1e-6)

    def test_rise_time(self):
        t = np.linspace(0, 10e-9, 1001)
        v = np.clip(t / 10e-9, 0, 1)
        assert rise_time(t, v, 1.0) == pytest.approx(8e-9, rel=1e-3)

    def test_skew(self):
        assert skew([1e-12, 5e-12, 3e-12]) == pytest.approx(4e-12)
        with pytest.raises(ValueError):
            skew([])


class TestExcursions:
    def test_overshoot(self):
        v = np.array([0.0, 1.3, 1.0, 1.05, 1.0])
        assert overshoot(v, 1.0) == pytest.approx(0.3)
        assert overshoot(np.array([0.5, 0.9]), 1.0) == 0.0

    def test_undershoot(self):
        v = np.array([0.0, -0.2, 0.1])
        assert undershoot(v, 0.0) == pytest.approx(0.2)

    def test_peak_noise(self):
        v = np.array([1.19, 1.25, 1.18])
        assert peak_noise(v, 1.2) == pytest.approx(0.05)

    def test_settling_time(self):
        t = np.linspace(0, 10, 11)
        v = np.array([0, 2, 1.5, 1.2, 1.05, 1.02, 1.01, 1.0, 1.0, 1.0, 1.0])
        assert settling_time(t, v, 1.0, band=0.03) == pytest.approx(5.0)

    def test_settling_never_raises(self):
        t = np.linspace(0, 1, 5)
        v = np.array([0.0, 2.0, 0.0, 2.0, 0.0])
        with pytest.raises(ValueError):
            settling_time(t, v, 1.0, band=0.1)

    def test_settled_from_start(self):
        t = np.linspace(0, 1, 5)
        v = np.full(5, 1.0)
        assert settling_time(t, v, 1.0, band=0.1) == 0.0
