"""High-level flows: the Table-1 / Figure-4 / Figure-1 experiment API."""

import numpy as np
import pytest

from repro import (
    build_clock_testcase,
    run_current_decomposition,
    run_loop_flow,
    run_peec_flow,
)


@pytest.fixture(scope="module")
def case():
    # Shared topology: large enough that inductance visibly moves delay
    # (at very small die sizes the wires are purely resistive and the
    # RC-vs-RLC ordering is noise).
    return build_clock_testcase(
        die=400e-6, stripe_pitch=60e-6, num_branches=3,
        branch_length=120e-6, t_stop=0.8e-9, dt=2e-12,
    )


@pytest.fixture(scope="module")
def rc_result(case):
    return run_peec_flow(case, include_inductance=False)


@pytest.fixture(scope="module")
def rlc_result(case):
    return run_peec_flow(case)


@pytest.fixture(scope="module")
def loop_result(case):
    return run_loop_flow(case)


@pytest.mark.slow
class TestTableOneShape:
    def test_all_sinks_measured(self, case, rlc_result):
        assert len(rlc_result.delays) == len(case.ports.sinks)

    def test_inductance_increases_delay(self, rc_result, rlc_result):
        # Paper Table 1: PEEC(RLC) delay > PEEC(RC) delay.
        assert rlc_result.worst_delay > rc_result.worst_delay

    def test_inductance_increases_skew(self, rc_result, rlc_result):
        # Paper Table 1: skew 9 ps -> 19 ps with inductance.
        assert rlc_result.worst_skew > rc_result.worst_skew * 0.8

    def test_loop_model_much_smaller(self, rlc_result, loop_result):
        assert loop_result.stats["resistors"] < \
            rlc_result.stats["resistors"] / 5
        assert loop_result.stats["mutuals"] == 0
        assert rlc_result.stats["mutuals"] > 100

    def test_loop_model_faster(self, rlc_result, loop_result):
        assert loop_result.solve_seconds < rlc_result.solve_seconds

    def test_loop_delay_shows_inductance_effect(self, rc_result, loop_result):
        # The loop model also predicts extra delay over RC (paper: it
        # overestimates the inductance effect).
        assert loop_result.worst_delay > rc_result.worst_delay * 0.9

    def test_rc_model_has_no_inductors(self, rc_result):
        assert rc_result.stats["inductors"] == 0

    def test_waveforms_settle_to_vdd(self, case, rlc_result):
        for wave in rlc_result.waveforms.values():
            assert wave[-1] == pytest.approx(case.vdd, abs=0.05)


@pytest.mark.slow
class TestReducedFlow:
    def test_rom_matches_full_peec(self, case, rlc_result):
        rom = run_peec_flow(case, use_reduction=True, reduction_order=40)
        assert rom.worst_delay == pytest.approx(
            rlc_result.worst_delay, rel=0.15
        )

    def test_rom_solve_is_faster(self, case, rlc_result):
        rom = run_peec_flow(case, use_reduction=True, reduction_order=30)
        assert rom.solve_seconds < rlc_result.solve_seconds * 2


@pytest.mark.slow
class TestHTreeTopology:
    def test_htree_case_builds_and_runs(self):
        case = build_clock_testcase(
            topology="htree", die=250e-6, htree_levels=1, t_stop=0.6e-9,
        )
        assert len(case.ports.sinks) == 4
        res = run_peec_flow(case)
        assert res.worst_delay > 0

    def test_balanced_tree_has_tiny_relative_skew(self):
        case = build_clock_testcase(
            topology="htree", die=250e-6, htree_levels=2, t_stop=0.6e-9,
        )
        res = run_peec_flow(case)
        assert res.worst_skew < 0.05 * res.worst_delay

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError):
            build_clock_testcase(topology="star")


@pytest.mark.slow
class TestCurrentDecomposition:
    def test_figure1_currents_present(self, case):
        decomp = run_current_decomposition(case)
        # All three populations flow during the edge.
        assert decomp.peak["I1_short_circuit"] > 0
        assert decomp.peak["I2_charge"] > 0 or decomp.peak["I3_discharge"] > 0
        assert decomp.peak["package"] > 0

    def test_falling_input_charges_line(self, case):
        # Input falling -> output rising -> PMOS charging current dominates.
        decomp = run_current_decomposition(case, falling_input=True)
        assert decomp.peak["I2_charge"] > decomp.peak["I3_discharge"]

    def test_rising_input_discharges_line(self, case):
        decomp = run_current_decomposition(case, falling_input=False)
        assert decomp.peak["I3_discharge"] > decomp.peak["I2_charge"]


class TestBackgroundActivitySeeding:
    """Regression: background activity used an unseeded generator, so
    flow runs with noise sources were unrepeatable.  The seed now rides
    on the test case and is plumbed through run_peec_flow."""

    @staticmethod
    def tiny_case(**kwargs):
        return build_clock_testcase(
            die=200e-6, stripe_pitch=50e-6, num_branches=2,
            branch_length=60e-6, t_stop=0.3e-9, dt=2e-12, **kwargs,
        )

    def test_case_carries_default_seed(self):
        from repro.peec import DEFAULT_ACTIVITY_SEED

        assert self.tiny_case().activity_seed == DEFAULT_ACTIVITY_SEED
        assert self.tiny_case(activity_seed=7).activity_seed == 7

    @pytest.mark.slow
    def test_same_case_reproduces_noisy_waveforms(self):
        from repro.resilience.faults import inject_faults

        case = self.tiny_case()
        # Identity test: ambient chaos injection (REPRO_FAULTS) would
        # escalate the two solves differently; suppress it.
        with inject_faults():
            r1 = run_peec_flow(case, include_inductance=False,
                               background_activity=4)
            r2 = run_peec_flow(case, include_inductance=False,
                               background_activity=4)
        for name, wave in r1.waveforms.items():
            assert np.array_equal(wave, r2.waveforms[name]), name

    @pytest.mark.slow
    def test_seed_changes_noise(self):
        base = self.tiny_case()
        other = self.tiny_case(activity_seed=202)
        r1 = run_peec_flow(base, include_inductance=False,
                           background_activity=4)
        r2 = run_peec_flow(other, include_inductance=False,
                           background_activity=4)
        diff = max(
            float(np.max(np.abs(w - r2.waveforms[n])))
            for n, w in r1.waveforms.items()
        )
        assert diff > 0.0
