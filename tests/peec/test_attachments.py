"""Package, decap, and switching-activity attachment passes."""

import numpy as np
import pytest

from repro.circuit.transient import transient_analysis
from repro.peec.activity import attach_switching_activity, triangular_pulse
from repro.peec.decap import attach_decaps, estimate_decoupling_capacitance
from repro.peec.model import PEECOptions, build_peec_model
from repro.peec.package import PackageSpec, attach_package


@pytest.fixture
def grid_model(small_grid_layout):
    return build_peec_model(
        small_grid_layout, PEECOptions(include_inductance=False)
    )


class TestPackage:
    def test_one_source_per_pad(self, grid_model):
        sources = attach_package(grid_model, PackageSpec())
        assert len(sources) == len(grid_model.layout.pads)

    def test_rail_voltages_respected(self, grid_model):
        attach_package(grid_model, PackageSpec(rail_voltages={"VDD": 1.5,
                                                              "GND": 0.0}))
        vdd_srcs = [s for s in grid_model.circuit.vsources
                    if "VDD" in s.name]
        assert vdd_srcs
        assert all(s.waveform(0.0) == 1.5 for s in vdd_srcs)

    def test_unknown_rail_rejected(self, grid_model):
        with pytest.raises(KeyError):
            attach_package(
                grid_model, PackageSpec(rail_voltages={"VCC": 1.0})
            )

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            PackageSpec(resistance=0.0)

    def test_grid_reaches_rail_voltage_at_dc(self, grid_model):
        from repro.circuit.dc import dc_operating_point

        attach_package(grid_model, PackageSpec())
        x = dc_operating_point(grid_model.circuit)
        vdd_nodes = grid_model.nodes_of_net("VDD")
        for node in vdd_nodes[:5]:
            assert x[grid_model.circuit.node_index(node)] == pytest.approx(
                1.2, abs=1e-6
            )

    def test_pad_nodes_lookup(self, grid_model):
        pads = grid_model.pad_nodes()
        assert len(pads) == len(grid_model.layout.pads)
        for node, net in pads.values():
            assert net in ("VDD", "GND")
            assert grid_model.node_info[node][0] == net


class TestDecap:
    def test_estimate_scales_with_width(self):
        a = estimate_decoupling_capacitance(1e-3, 0.15)
        b = estimate_decoupling_capacitance(2e-3, 0.15)
        assert b == pytest.approx(2 * a)

    def test_estimate_switching_fraction(self):
        quiet = estimate_decoupling_capacitance(1e-3, 0.0)
        busy = estimate_decoupling_capacitance(1e-3, 0.5)
        assert busy == pytest.approx(quiet / 2)

    def test_estimate_validation(self):
        with pytest.raises(ValueError):
            estimate_decoupling_capacitance(1e-3, 1.5)
        with pytest.raises(ValueError):
            estimate_decoupling_capacitance(-1.0, 0.1)

    def test_attach_count_and_total(self, grid_model):
        names = attach_decaps(grid_model, 10e-12, count=5)
        assert len(names) == 5
        caps = [c for c in grid_model.circuit.capacitors
                if c.name.startswith("Cdecap")]
        assert sum(c.capacitance for c in caps) == pytest.approx(10e-12)

    def test_attach_is_reproducible(self, small_grid_layout):
        m1 = build_peec_model(small_grid_layout,
                              PEECOptions(include_inductance=False))
        m2 = build_peec_model(small_grid_layout,
                              PEECOptions(include_inductance=False))
        attach_decaps(m1, 1e-12, count=3, rng=np.random.default_rng(5))
        attach_decaps(m2, 1e-12, count=3, rng=np.random.default_rng(5))
        r1 = [(r.n1, r.n2) for r in m1.circuit.resistors if "decap" in r.name]
        r2 = [(r.n1, r.n2) for r in m2.circuit.resistors if "decap" in r.name]
        assert r1 == r2

    def test_attach_validation(self, grid_model):
        with pytest.raises(ValueError):
            attach_decaps(grid_model, -1e-12)
        with pytest.raises(ValueError):
            attach_decaps(grid_model, 1e-12, count=0)


class TestActivity:
    def test_triangular_pulse_shape(self):
        w = triangular_pulse(1e-9, 2e-3, 0.1e-9, 0.2e-9)
        assert w(0.9e-9) == 0.0
        assert w(1.1e-9) == pytest.approx(2e-3)
        assert w(1.2e-9) == pytest.approx(1e-3)
        assert w(2e-9) == 0.0

    def test_attach_creates_sources(self, grid_model):
        names = attach_switching_activity(grid_model, num_sources=4)
        assert len(names) == 4
        assert len(grid_model.circuit.isources) == 4

    def test_activity_causes_grid_noise(self, small_grid_layout):
        model = build_peec_model(
            small_grid_layout, PEECOptions(include_inductance=False)
        )
        attach_package(model, PackageSpec())
        attach_switching_activity(
            model, num_sources=4, peak_current=2e-3,
            window=(0.05e-9, 0.2e-9),
        )
        vdd_node = model.nodes_of_net("VDD", "M5")[0]
        res = transient_analysis(model.circuit, 0.6e-9, 2e-12,
                                 record=[vdd_node])
        v = res.voltage(vdd_node)
        assert np.max(np.abs(v - 1.2)) > 1e-4  # visible supply noise

    def test_attach_validation(self, grid_model):
        with pytest.raises(ValueError):
            attach_switching_activity(grid_model, num_sources=0)
        with pytest.raises(ValueError):
            attach_switching_activity(grid_model, peak_current=-1.0)


class TestActivitySeeding:
    """Regression: attach_switching_activity used to call
    np.random.default_rng() unseeded, so every flow run produced a
    different background-noise floor and no IR/noise number was
    reproducible."""

    @staticmethod
    def placements(model):
        sources = [
            s for s in model.circuit.isources if s.name.startswith("Iact")
        ]
        assert sources, "no activity sources attached"
        return [(s.n_plus, s.n_minus, s.waveform.points) for s in sources]

    def build(self, small_grid_layout):
        return build_peec_model(
            small_grid_layout, PEECOptions(include_inductance=False)
        )

    def test_default_is_deterministic(self, small_grid_layout):
        m1, m2 = self.build(small_grid_layout), self.build(small_grid_layout)
        attach_switching_activity(m1, num_sources=5)
        attach_switching_activity(m2, num_sources=5)
        assert self.placements(m1) == self.placements(m2)

    def test_explicit_seed_matches_default_constant(self, small_grid_layout):
        from repro.peec import DEFAULT_ACTIVITY_SEED

        m1, m2 = self.build(small_grid_layout), self.build(small_grid_layout)
        attach_switching_activity(m1, num_sources=5)
        attach_switching_activity(
            m2, num_sources=5, seed=DEFAULT_ACTIVITY_SEED
        )
        assert self.placements(m1) == self.placements(m2)

    def test_different_seeds_differ(self, small_grid_layout):
        m1, m2 = self.build(small_grid_layout), self.build(small_grid_layout)
        attach_switching_activity(m1, num_sources=8, seed=1)
        attach_switching_activity(m2, num_sources=8, seed=2)
        assert self.placements(m1) != self.placements(m2)

    def test_explicit_rng_overrides_seed(self, small_grid_layout):
        m1, m2 = self.build(small_grid_layout), self.build(small_grid_layout)
        attach_switching_activity(
            m1, num_sources=5, seed=1, rng=np.random.default_rng(9)
        )
        attach_switching_activity(
            m2, num_sources=5, seed=2, rng=np.random.default_rng(9)
        )
        assert self.placements(m1) == self.placements(m2)
