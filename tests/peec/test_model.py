"""PEEC circuit compilation."""

import numpy as np
import pytest

from repro.geometry import build_signal_over_grid
from repro.peec.model import PEECOptions, build_peec_model
from repro.sparsify import BlockDiagonalSparsifier, KMatrixSparsifier


@pytest.fixture(scope="module")
def structure():
    return build_signal_over_grid(length=200e-6, returns_per_side=2, pitch=8e-6)


class TestRLCStructure:
    def test_every_segment_gets_r_and_l(self, structure):
        layout, _ = structure
        model = build_peec_model(layout)
        inplane = [s for s in layout.segments if s.direction.value != "z"]
        assert len(model.circuit.resistors) >= len(inplane)
        assert model.circuit.num_inductor_branches == len(inplane)

    def test_rc_model_has_no_inductors(self, structure):
        layout, _ = structure
        model = build_peec_model(
            layout, PEECOptions(include_inductance=False)
        )
        assert model.circuit.num_inductor_branches == 0
        assert model.circuit.num_mutual_terms == 0

    def test_dense_model_couples_all_parallel_pairs(self, structure):
        layout, _ = structure
        model = build_peec_model(layout)
        n_x = len([s for s in layout.segments if s.direction.value == "x"])
        n_y = len([s for s in layout.segments if s.direction.value == "y"])
        expected = n_x * (n_x - 1) // 2 + n_y * (n_y - 1) // 2
        assert model.circuit.num_mutual_terms == expected

    def test_ground_caps_present(self, structure):
        layout, _ = structure
        model = build_peec_model(layout)
        grounded = [c for c in model.circuit.capacitors if c.n2 == "0"]
        assert grounded

    def test_coupling_caps_optional(self):
        # Tight pitch so adjacent lines fall within the coupling cutoff.
        layout, _ = build_signal_over_grid(
            length=200e-6, returns_per_side=2, pitch=3e-6,
            signal_width=1e-6,
        )
        with_cc = build_peec_model(layout)
        without_cc = build_peec_model(
            layout, PEECOptions(include_coupling_caps=False)
        )
        assert len(with_cc.circuit.capacitors) > len(without_cc.circuit.capacitors)

    def test_segment_splitting_multiplies_elements(self, structure):
        layout, _ = structure
        coarse = build_peec_model(layout)
        fine = build_peec_model(layout, PEECOptions(max_segment_length=50e-6))
        assert fine.circuit.num_inductor_branches > \
            coarse.circuit.num_inductor_branches


class TestNodeMapping:
    def test_taps_resolve_to_nodes(self, structure):
        layout, ports = structure
        model = build_peec_model(layout)
        drv = model.node_at(ports["driver"])
        rcv = model.node_at(ports["receiver"])
        assert drv != rcv

    def test_distant_tap_rejected(self, structure):
        from repro.geometry.clocktree import TapPoint

        layout, _ = structure
        model = build_peec_model(layout)
        with pytest.raises(ValueError):
            model.node_at(TapPoint("sig", 5e-3, 5e-3, "M6", "far"))

    def test_unknown_net_rejected(self, structure):
        from repro.geometry.clocktree import TapPoint

        layout, _ = structure
        model = build_peec_model(layout)
        with pytest.raises(KeyError):
            model.node_at(TapPoint("ghost", 0.0, 0.0, "M6", "g"))

    def test_nodes_of_net_filters(self, structure):
        layout, _ = structure
        model = build_peec_model(layout)
        sig_nodes = model.nodes_of_net("sig")
        assert sig_nodes
        assert all(model.node_info[n][0] == "sig" for n in sig_nodes)


class TestViasAndGrid:
    def test_grid_vias_become_resistors(self, small_grid_layout):
        model = build_peec_model(
            small_grid_layout, PEECOptions(include_inductance=False)
        )
        via_rs = [r for r in model.circuit.resistors if r.name.startswith("Rv_")]
        assert len(via_rs) == len(small_grid_layout.vias)


class TestSparsifierIntegration:
    def test_block_diagonal_reduces_mutuals(self, structure):
        layout, _ = structure
        dense = build_peec_model(layout)
        sparse = build_peec_model(
            layout,
            PEECOptions(sparsifier=BlockDiagonalSparsifier(num_sections=4)),
        )
        assert sparse.circuit.num_mutual_terms < dense.circuit.num_mutual_terms
        assert len(sparse.circuit.inductor_sets) > 1

    def test_k_matrix_model_builds_k_sets(self, structure):
        layout, _ = structure
        model = build_peec_model(
            layout, PEECOptions(sparsifier=KMatrixSparsifier(threshold=0.0))
        )
        assert model.circuit.k_sets
        assert not model.circuit.inductor_sets

    def test_mutual_min_coupling_prefilter(self, structure):
        layout, _ = structure
        full = build_peec_model(layout)
        filtered = build_peec_model(
            layout, PEECOptions(mutual_min_coupling=0.2)
        )
        assert filtered.circuit.num_mutual_terms < full.circuit.num_mutual_terms
