"""Substrate mesh and N-well capacitance extensions."""

import numpy as np
import pytest

from repro.circuit.dc import dc_operating_point
from repro.circuit.transient import transient_analysis
from repro.peec.model import PEECOptions, build_peec_model
from repro.peec.package import attach_package
from repro.peec.activity import attach_switching_activity
from repro.peec.substrate import (
    SubstrateSpec,
    attach_nwell_capacitance,
    attach_substrate,
)


@pytest.fixture
def grid_model(small_grid_layout):
    return build_peec_model(
        small_grid_layout, PEECOptions(include_inductance=False)
    )


class TestSubstrate:
    def test_mesh_node_count(self, grid_model):
        nodes = attach_substrate(grid_model, SubstrateSpec(mesh=3))
        assert len(nodes) == 9

    def test_mesh_resistor_count(self, grid_model):
        attach_substrate(grid_model, SubstrateSpec(mesh=3))
        mesh_rs = [r for r in grid_model.circuit.resistors
                   if r.name.startswith(("Rsub_h_", "Rsub_v_"))]
        # 2 * n * (n-1) internal mesh edges.
        assert len(mesh_rs) == 12

    def test_couplings_and_taps_created(self, grid_model):
        attach_substrate(grid_model, SubstrateSpec(mesh=2, tap_fraction=0.5))
        caps = [c for c in grid_model.circuit.capacitors
                if c.name.startswith("Csub_")]
        taps = [r for r in grid_model.circuit.resistors
                if r.name.startswith("Rtap_")]
        assert caps
        assert taps
        assert len(taps) == max(1, round(0.5 * len(caps)))

    def test_circuit_stays_solvable(self, grid_model):
        attach_substrate(grid_model)
        attach_package(grid_model)
        x = dc_operating_point(grid_model.circuit)
        assert np.all(np.isfinite(x))

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            SubstrateSpec(mesh=1)
        with pytest.raises(ValueError):
            SubstrateSpec(tap_fraction=0.0)
        with pytest.raises(ValueError):
            SubstrateSpec(sheet_resistance=-1.0)

    def test_low_impedance_substrate_parallels_the_ground_grid(
        self, small_grid_layout
    ):
        """The substrate return path must actually participate: the
        impedance between distant ground nodes drops when a heavily
        tapped, low-impedance substrate is attached."""
        from repro.circuit.ac import ac_impedance

        def z_between(with_substrate: bool) -> float:
            model = build_peec_model(
                small_grid_layout, PEECOptions(include_inductance=False)
            )
            if with_substrate:
                attach_substrate(
                    model,
                    SubstrateSpec(mesh=3, sheet_resistance=1.0,
                                  coupling_cap_per_node=50e-15,
                                  tap_fraction=1.0),
                )
            nodes = model.nodes_of_net("GND", "M5")
            z = ac_impedance(model.circuit, [1e9],
                             (nodes[0], nodes[-1]), gmin=1e-12)
            return float(np.abs(z[0]))

        assert z_between(True) < z_between(False)


class TestNWell:
    def test_total_capacitance_distributed(self, grid_model):
        names = attach_nwell_capacitance(grid_model, total_well_area=1e-8,
                                         count=4)
        caps = [c for c in grid_model.circuit.capacitors
                if c.name in names]
        total = sum(c.capacitance for c in caps)
        assert total == pytest.approx(1e-8 * 1e-4)  # area * density

    def test_validation(self, grid_model):
        with pytest.raises(ValueError):
            attach_nwell_capacitance(grid_model, total_well_area=0.0)
        with pytest.raises(ValueError):
            attach_nwell_capacitance(grid_model, 1e-8, count=0)
        with pytest.raises(ValueError):
            attach_nwell_capacitance(grid_model, 1e-8, power_net="nope")

    def test_reproducible_placement(self, small_grid_layout):
        def build():
            model = build_peec_model(
                small_grid_layout, PEECOptions(include_inductance=False)
            )
            attach_nwell_capacitance(model, 1e-8, count=3,
                                     rng=np.random.default_rng(9))
            return [
                r.n1 for r in model.circuit.resistors
                if r.name.startswith("Rnwell")
            ]

        assert build() == build()
