"""Width-splitting of wide conductors in the PEEC builder.

"These do not consider skin effect, hence very wide conductors must be
split into narrower lines before computing inductance" (paper, Section 3).
"""

import numpy as np
import pytest

from repro.circuit.ac import ac_impedance
from repro.geometry.layout import Layout, NetKind
from repro.geometry.segment import Direction, default_layer_stack
from repro.peec.model import PEECOptions, build_peec_model
from repro.geometry.clocktree import TapPoint


@pytest.fixture
def wide_wire_layout():
    """A wide signal wire with a ground return."""
    layout = Layout(default_layer_stack(6), name="wide")
    layout.add_net("sig", NetKind.SIGNAL)
    layout.add_net("GND", NetKind.GROUND)
    layout.add_wire("sig", "M6", Direction.X, (0.0, -4e-6), 300e-6, 8e-6)
    layout.add_wire("GND", "M6", Direction.X, (0.0, 10e-6), 300e-6, 2e-6)
    return layout


class TestStripSplitting:
    def test_strips_multiply_branches(self, wide_wire_layout):
        plain = build_peec_model(wide_wire_layout)
        split = build_peec_model(
            wide_wire_layout, PEECOptions(max_strip_width=2e-6)
        )
        assert split.circuit.num_inductor_branches > \
            plain.circuit.num_inductor_branches

    def test_wire_stays_connected(self, wide_wire_layout):
        model = build_peec_model(
            wide_wire_layout,
            PEECOptions(max_segment_length=100e-6, max_strip_width=2e-6),
        )
        # DC resistance end to end must stay finite and equal the solid
        # wire's (strips in parallel = original cross-section).
        drv = model.node_at(TapPoint("sig", 0.0, 0.0, "M6"))
        rcv = model.node_at(TapPoint("sig", 300e-6, 0.0, "M6"))
        z = ac_impedance(model.circuit, [0.0], (drv, rcv), gmin=1e-12)
        plain = build_peec_model(wide_wire_layout)
        zp = ac_impedance(
            plain.circuit, [0.0],
            (plain.node_at(TapPoint("sig", 0.0, 0.0, "M6")),
             plain.node_at(TapPoint("sig", 300e-6, 0.0, "M6"))),
            gmin=1e-12,
        )
        assert z[0].real == pytest.approx(zp[0].real, rel=1e-6)

    def test_strips_let_current_crowd_at_high_frequency(self, wide_wire_layout):
        """With strips, the loop impedance becomes frequency dependent:
        current migrates to the return-facing edge of the wide wire."""
        model = build_peec_model(
            wide_wire_layout,
            PEECOptions(max_segment_length=100e-6, max_strip_width=1e-6),
        )
        circuit = model.circuit
        drv = model.node_at(TapPoint("sig", 0.0, 0.0, "M6"))
        rcv = model.node_at(TapPoint("sig", 300e-6, 0.0, "M6"))
        g_in = model.node_at(TapPoint("GND", 0.0, 11e-6, "M6"))
        g_out = model.node_at(TapPoint("GND", 300e-6, 11e-6, "M6"))
        circuit.add_resistor("Rshort", rcv, g_out, 1e-6)
        z = ac_impedance(circuit, [1e8, 1e11], (drv, g_in), gmin=1e-12)
        l_low = z[0].imag / (2 * np.pi * 1e8)
        l_high = z[1].imag / (2 * np.pi * 1e11)
        assert l_high < l_low  # proximity effect captured

    def test_via_connectivity_preserved(self, small_grid_layout):
        model = build_peec_model(
            small_grid_layout,
            PEECOptions(max_strip_width=1e-6, max_segment_length=60e-6),
        )
        # Grid stays simulatable: its DC solve must not be singular.
        from repro.peec.package import attach_package
        from repro.circuit.dc import dc_operating_point

        attach_package(model)
        x = dc_operating_point(model.circuit)
        assert np.all(np.isfinite(x))
