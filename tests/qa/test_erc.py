"""Electrical rule check: one fixture circuit per rule, plus clean models."""

import numpy as np
import pytest

from repro.circuit.elements import MutualInductor
from repro.circuit.netlist import GROUND, Circuit
from repro.qa import ERC_RULES, Severity, check_circuit


def rules_fired(report):
    return {d.rule for d in report}


def make_clean_rlc() -> Circuit:
    c = Circuit("clean")
    c.add_vsource("Vin", "a", GROUND, 1.0)
    c.add_resistor("Rdrv", "a", "b", 10.0)
    c.add_series_rl("line", "b", "c", 5.0, 1e-9)
    c.add_capacitor("Cload", "c", GROUND, 1e-14)
    return c


class TestCleanCircuits:
    def test_clean_rlc_has_zero_diagnostics(self):
        report = check_circuit(make_clean_rlc())
        assert len(report) == 0
        assert report.ok
        assert report.exit_code() == 0

    def test_clean_peec_model_has_zero_diagnostics(self, small_grid_layout):
        from repro.peec.model import PEECOptions, build_peec_model

        model = build_peec_model(
            small_grid_layout, PEECOptions(max_segment_length=60e-6)
        )
        report = check_circuit(model.circuit)
        assert list(report) == []

    def test_coupled_but_physical_mutual_is_clean(self):
        c = make_clean_rlc()
        c.add_inductor("l1", "c", "d", 1e-9)
        c.add_inductor("l2", "d", GROUND, 1e-9)
        c.add_mutual("m", "l1", "l2", 0.5e-9)
        assert list(check_circuit(c)) == []


class TestDanglingNodes:
    def test_registered_but_unconnected_node(self):
        c = make_clean_rlc()
        c.node("orphan")
        report = check_circuit(c)
        assert "erc.dangling-node" in rules_fired(report)
        # Unconnected node is also unreachable from ground.
        assert "erc.unreachable" in rules_fired(report)

    def test_single_terminal_node(self):
        c = make_clean_rlc()
        c.add_resistor("Rstub", "c", "stub", 1.0)
        report = check_circuit(c)
        dangling = [d for d in report if d.rule == "erc.dangling-node"]
        assert len(dangling) == 1
        assert "stub" in dangling[0].location
        assert dangling[0].severity == Severity.WARNING
        # A warning alone never fails the check (without --strict).
        assert report.exit_code() == 0
        assert report.exit_code(strict=True) == 1


class TestUnreachable:
    def test_floating_island_is_error(self):
        c = make_clean_rlc()
        c.add_resistor("Risland", "p", "q", 1.0)
        c.add_capacitor("Cisland", "p", "q", 1e-15)
        report = check_circuit(c)
        island = [d for d in report if d.rule == "erc.unreachable"]
        assert len(island) == 1
        assert "p" in island[0].message and "q" in island[0].message
        assert not report.ok


class TestFloatingReference:
    def test_fully_floating_circuit_is_info_not_error(self):
        # Loop-extraction circuits are driven through external ports and
        # never touch ground; that's one informational note, not an error
        # per island.
        c = Circuit("floating")
        c.add_resistor("r1", "a", "b", 1.0)
        c.add_inductor("l1", "b", "c", 1e-9)
        c.add_resistor("r2", "p", "q", 1.0)  # second conductive component
        report = check_circuit(c)
        floating = [d for d in report if d.rule == "erc.floating-reference"]
        assert len(floating) == 1
        assert floating[0].severity == Severity.INFO
        assert "erc.unreachable" not in rules_fired(report)
        assert report.exit_code() == 0

    def test_grounded_circuit_still_reports_islands(self):
        c = make_clean_rlc()
        c.add_resistor("Risland", "p", "q", 1.0)
        report = check_circuit(c)
        assert "erc.unreachable" in rules_fired(report)
        assert "erc.floating-reference" not in rules_fired(report)


class TestValueRules:
    def test_negative_resistance_smuggled_past_the_constructor(self):
        # Element constructors validate; ERC is the defense in depth for
        # programmatic mutation and foreign netlist importers.
        c = make_clean_rlc()
        object.__setattr__(c.resistors[0], "resistance", -5.0)
        report = check_circuit(c)
        bad = [d for d in report if d.rule == "erc.nonpositive-value"]
        assert len(bad) == 1
        assert "Rdrv" in bad[0].location

    def test_nan_inductor_set_entry(self):
        c = make_clean_rlc()
        matrix = np.eye(2) * 1e-9
        c.add_inductor_set("Lblk", [("c", "x0"), ("c", "x1")], matrix)
        c.add_resistor("rx0", "x0", GROUND, 1.0)
        c.add_resistor("rx1", "x1", GROUND, 1.0)
        object.__setattr__(
            c.inductor_sets[0], "matrix",
            np.array([[1e-9, np.nan], [np.nan, 1e-9]]),
        )
        report = check_circuit(c)
        assert "erc.nonpositive-value" in rules_fired(report)


class TestVsourceLoop:
    def test_parallel_sources_form_loop(self):
        c = Circuit("t")
        c.add_vsource("v1", "a", GROUND, 1.0)
        c.add_vsource("v2", "a", GROUND, 2.0)
        c.add_resistor("r", "a", GROUND, 1.0)
        report = check_circuit(c)
        loop = [d for d in report if d.rule == "erc.vsource-loop"]
        assert len(loop) == 1
        assert loop[0].severity == Severity.ERROR

    def test_chain_of_sources_closing_through_ground(self):
        c = Circuit("t")
        c.add_vsource("v1", "a", GROUND, 1.0)
        c.add_vsource("v2", "b", "a", 1.0)
        c.add_vsource("v3", "b", GROUND, 1.0)  # closes the loop
        c.add_resistor("r", "b", GROUND, 1.0)
        report = check_circuit(c)
        assert "erc.vsource-loop" in rules_fired(report)

    def test_series_sources_are_fine(self):
        c = Circuit("t")
        c.add_vsource("v1", "a", GROUND, 1.0)
        c.add_vsource("v2", "b", "a", 1.0)
        c.add_resistor("r", "b", GROUND, 1.0)
        assert "erc.vsource-loop" not in rules_fired(check_circuit(c))


class TestInductorCutset:
    def test_parallel_ideal_inductors(self):
        # The L-cutset fixture: the DC matrix has two identical branch rows.
        c = Circuit("t")
        c.add_vsource("v", "a", GROUND, 1.0)
        c.add_resistor("r", "a", "b", 1.0)
        c.add_inductor("l1", "b", GROUND, 1e-9)
        c.add_inductor("l2", "b", GROUND, 1e-9)
        report = check_circuit(c)
        loop = [d for d in report if d.rule == "erc.inductor-loop"]
        assert len(loop) == 1

    def test_series_rl_everywhere_is_fine(self):
        c = Circuit("t")
        c.add_vsource("v", "a", GROUND, 1.0)
        c.add_series_rl("s1", "a", "b", 1.0, 1e-9)
        c.add_series_rl("s2", "a", "b", 1.0, 1e-9)  # parallel *RL*, not L
        c.add_resistor("r", "b", GROUND, 1.0)
        assert "erc.inductor-loop" not in rules_fired(check_circuit(c))

    def test_inductor_set_branch_closing_scalar_loop(self):
        c = Circuit("t")
        c.add_vsource("v", "a", GROUND, 1.0)
        c.add_resistor("r", "a", "b", 1.0)
        c.add_inductor("l1", "b", "c", 1e-9)
        c.add_inductor_set("blk", [("b", "c")], np.array([[1e-9]]))
        c.add_resistor("rl", "c", GROUND, 1.0)
        report = check_circuit(c)
        assert "erc.inductor-loop" in rules_fired(report)


class TestMutualRules:
    def test_mutual_referencing_missing_inductor(self):
        c = make_clean_rlc()
        c.add_inductor("l1", "c", "d", 1e-9)
        c.add_resistor("rd", "d", GROUND, 1.0)
        # add_mutual validates, so inject directly (importer scenario).
        c.mutuals.append(MutualInductor("m", "l1", "ghost", 0.1e-9))
        report = check_circuit(c)
        bad = [d for d in report if d.rule == "erc.unknown-inductor"]
        assert len(bad) == 1
        assert "ghost" in bad[0].message

    def test_coupling_coefficient_of_one_or_more(self):
        c = make_clean_rlc()
        c.add_inductor("l1", "c", "d", 1e-9)
        c.add_inductor("l2", "d", GROUND, 4e-9)
        c.add_mutual("m", "l1", "l2", 2e-9)  # k = 2/sqrt(4) = 1.0
        report = check_circuit(c)
        bad = [d for d in report if d.rule == "erc.coupling-unphysical"]
        assert len(bad) == 1
        assert not report.ok


class TestPassivity:
    def test_truncation_corrupted_inductor_set(self):
        # Symmetric, positive diagonal, each |k| < 1 -- yet indefinite:
        # exactly the matrix naive truncation produces.
        matrix = np.array([
            [1.0, -0.6, -0.6],
            [-0.6, 1.0, -0.6],
            [-0.6, -0.6, 1.0],
        ]) * 1e-9
        assert np.linalg.eigvalsh(matrix)[0] < 0
        c = Circuit("t")
        c.add_vsource("v", "a", GROUND, 1.0)
        c.add_resistor("r0", "a", "x0", 1.0)
        branches = [("x0", "y0"), ("x1", "y1"), ("x2", "y2")]
        c.add_inductor_set("Lblk", branches, matrix)
        for i in range(3):
            c.add_resistor(f"ry{i}", f"y{i}", GROUND, 1.0)
            if i:
                c.add_resistor(f"rx{i}", f"x{i}", GROUND, 1.0)
        report = check_circuit(c)
        bad = [d for d in report if d.rule == "erc.non-passive-inductance"]
        assert len(bad) == 1
        assert "Lblk" in bad[0].message
        assert not report.ok

    def test_scalar_mutuals_forming_indefinite_block(self):
        c = Circuit("t")
        c.add_vsource("v", "a", GROUND, 1.0)
        nodes = ["a", "b", "c", "d"]
        for i in range(3):
            c.add_resistor(f"r{i}", nodes[i], f"m{i}", 1.0)
            c.add_inductor(f"l{i}", f"m{i}", nodes[i + 1], 1e-9)
        c.add_resistor("rl", "d", GROUND, 1.0)
        for i, j in ((0, 1), (0, 2), (1, 2)):
            c.add_mutual(f"k{i}{j}", f"l{i}", f"l{j}", -0.6e-9)
        report = check_circuit(c)
        assert "erc.non-passive-inductance" in rules_fired(report)
        # Every pairwise coupling alone is physical.
        assert "erc.coupling-unphysical" not in rules_fired(report)

    def test_suppression_drops_but_counts(self):
        c = Circuit("t")
        c.add_vsource("v1", "a", GROUND, 1.0)
        c.add_vsource("v2", "a", GROUND, 2.0)
        c.add_resistor("r", "a", GROUND, 1.0)
        report = check_circuit(c, suppress=("erc.vsource-loop",))
        assert "erc.vsource-loop" not in rules_fired(report)
        assert report.num_suppressed == 1
        assert report.ok


class TestRuleCatalog:
    def test_every_fired_rule_is_documented(self):
        c = Circuit("t")
        c.add_vsource("v1", "a", GROUND, 1.0)
        c.add_vsource("v2", "a", GROUND, 2.0)
        report = check_circuit(c)
        assert rules_fired(report) <= set(ERC_RULES)
