"""Tests for repro.qa.diagnostics: formatting, suppression, exit codes."""

from repro.qa.diagnostics import Diagnostic, DiagnosticReport, Severity


def diag(rule="QA101", severity=Severity.ERROR, message="bad thing",
         location="src/x.py:3:0", hint=""):
    return Diagnostic(rule=rule, severity=severity, message=message,
                      location=location, hint=hint)


class TestSeverity:
    def test_ordering_is_by_badness(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR

    def test_str_is_lowercase_name(self):
        assert str(Severity.ERROR) == "error"
        assert str(Severity.WARNING) == "warning"
        assert str(Severity.INFO) == "info"


class TestDiagnosticFormat:
    def test_full_line(self):
        d = diag(hint="do the fix")
        assert d.format() == (
            "src/x.py:3:0: error [QA101] bad thing  (hint: do the fix)"
        )

    def test_no_location_drops_the_prefix(self):
        d = diag(location="")
        assert d.format() == "error [QA101] bad thing"

    def test_no_hint_drops_the_suffix(self):
        assert "(hint:" not in diag().format()

    def test_is_frozen(self):
        import dataclasses

        import pytest
        with pytest.raises(dataclasses.FrozenInstanceError):
            diag().rule = "QA999"


class TestDiagnosticReport:
    def test_collects_in_order(self):
        report = DiagnosticReport([diag(rule="QA101"), diag(rule="QA102")])
        assert [d.rule for d in report] == ["QA101", "QA102"]
        assert len(report) == 2

    def test_suppression_drops_and_counts(self):
        report = DiagnosticReport(suppress=["QA101"])
        report.add(diag(rule="QA101"))
        report.add(diag(rule="QA102"))
        assert [d.rule for d in report] == ["QA102"]
        assert report.num_suppressed == 1

    def test_extend_respects_suppression(self):
        report = DiagnosticReport(suppress=["QA102"])
        report.extend([diag(rule="QA101"), diag(rule="QA102")])
        assert len(report) == 1
        assert report.num_suppressed == 1

    def test_severity_buckets(self):
        report = DiagnosticReport([
            diag(severity=Severity.ERROR),
            diag(severity=Severity.WARNING),
            diag(severity=Severity.WARNING),
            diag(severity=Severity.INFO),
        ])
        assert len(report.errors) == 1
        assert len(report.warnings) == 2
        assert len(report.by_severity(Severity.INFO)) == 1

    def test_ok_tracks_errors_only(self):
        assert DiagnosticReport([diag(severity=Severity.WARNING)]).ok
        assert not DiagnosticReport([diag(severity=Severity.ERROR)]).ok

    def test_exit_code(self):
        errors = DiagnosticReport([diag(severity=Severity.ERROR)])
        warnings = DiagnosticReport([diag(severity=Severity.WARNING)])
        clean = DiagnosticReport()
        assert errors.exit_code() == 1
        assert warnings.exit_code() == 0
        assert warnings.exit_code(strict=True) == 1
        assert clean.exit_code(strict=True) == 0

    def test_format_has_one_line_per_finding_plus_summary(self):
        report = DiagnosticReport(
            [diag(severity=Severity.ERROR), diag(severity=Severity.WARNING)],
        )
        lines = report.format().splitlines()
        assert len(lines) == 3
        assert lines[-1] == "1 error(s), 1 warning(s)"

    def test_format_summary_mentions_suppressed(self):
        report = DiagnosticReport(suppress=["QA101"])
        report.add(diag(rule="QA101"))
        assert report.format() == "0 error(s), 0 warning(s), 1 suppressed"

    def test_repr(self):
        report = DiagnosticReport([diag()])
        assert repr(report) == "DiagnosticReport(1 errors, 0 warnings, 1 total)"
