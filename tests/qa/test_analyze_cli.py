"""Tests for the baseline ratchet and the ``repro analyze`` CLI."""

import json
import textwrap

from repro.qa.analyze import analyze_paths
from repro.qa.analyze.baseline import (
    BaselineEntry,
    apply_baseline,
    finding_fingerprint,
    load_baseline,
    write_baseline,
)
from repro.qa.analyze.main import main
from repro.qa.diagnostics import Diagnostic, DiagnosticReport, Severity

BUGGY = textwrap.dedent("""
    import numpy as np

    def at(freq, freqs, values):
        return complex(np.interp(freq, freqs, values))
""")

CLEAN = textwrap.dedent("""
    import numpy as np

    def at(freq, freqs, values):
        order = np.argsort(freqs, kind="stable")
        return complex(np.interp(freq, freqs[order], values[order]))
""")


def diag(rule="QA201", message="bad", location="src/x.py:10:4"):
    return Diagnostic(rule=rule, severity=Severity.ERROR,
                      message=message, location=location)


class TestFingerprint:
    def test_stable_across_line_moves(self):
        a = diag(location="src/x.py:10:4")
        b = diag(location="src/x.py:99:0")
        assert finding_fingerprint(a) == finding_fingerprint(b)

    def test_changes_with_rule_path_or_message(self):
        base = finding_fingerprint(diag())
        assert finding_fingerprint(diag(rule="QA202")) != base
        assert finding_fingerprint(diag(message="other")) != base
        assert finding_fingerprint(
            diag(location="src/y.py:10:4")
        ) != base


class TestBaselineRoundTrip:
    def test_apply_splits_new_baselined_stale(self):
        known, fresh = diag(message="known"), diag(message="fresh")
        entries = [
            BaselineEntry(
                fingerprint=finding_fingerprint(known), rule=known.rule,
                path="src/x.py", message=known.message, justification="ok",
            ),
            BaselineEntry(
                fingerprint="0" * 16, rule="QA202", path="src/gone.py",
                message="paid down", justification="was ok",
            ),
        ]
        result = apply_baseline(DiagnosticReport([known, fresh]), entries)
        assert [d.message for d in result.baselined] == ["known"]
        assert [d.message for d in result.new] == ["fresh"]
        assert [e.path for e in result.stale] == ["src/gone.py"]

    def test_write_then_load_round_trips(self, tmp_path):
        path = tmp_path / "baseline.json"
        written = write_baseline(DiagnosticReport([diag()]), path)
        loaded = load_baseline(path)
        assert loaded == written
        assert loaded[0].rule == "QA201"
        assert "triage" in loaded[0].justification

    def test_rewrite_preserves_existing_justifications(self, tmp_path):
        path = tmp_path / "baseline.json"
        first = write_baseline(DiagnosticReport([diag()]), path)
        triaged = BaselineEntry(
            fingerprint=first[0].fingerprint, rule=first[0].rule,
            path=first[0].path, message=first[0].message,
            justification="deliberate, see docs/qa_rules.md",
        )
        rewritten = write_baseline(
            DiagnosticReport([diag(), diag(message="newer")]), path,
            previous=[triaged],
        )
        by_msg = {e.message: e.justification for e in rewritten}
        assert by_msg["bad"] == "deliberate, see docs/qa_rules.md"
        assert "triage" in by_msg["newer"]

    def test_missing_file_is_an_empty_baseline(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == []

    def test_non_baseline_json_is_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"findings": []}', encoding="utf-8")
        import pytest
        with pytest.raises(ValueError):
            load_baseline(path)


class TestAnalyzeCli:
    def _fixture(self, tmp_path, source=BUGGY):
        path = tmp_path / "fixture.py"
        path.write_text(source, encoding="utf-8")
        return path

    def test_findings_exit_1_and_print_the_rule(self, tmp_path, capsys):
        path = self._fixture(tmp_path)
        assert main([str(path)]) == 1
        out = capsys.readouterr().out
        assert "[QA201]" in out
        assert "new finding(s)" in out

    def test_clean_tree_exits_0(self, tmp_path, capsys):
        path = self._fixture(tmp_path, CLEAN)
        assert main([str(path)]) == 0
        assert "0 new finding(s)" in capsys.readouterr().out

    def test_json_format_payload(self, tmp_path, capsys):
        path = self._fixture(tmp_path)
        assert main([str(path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["new"] == 1
        assert payload["summary"]["by_rule"] == {"QA201": 1}
        finding = payload["findings"][0]
        assert finding["rule"] == "QA201"
        assert finding["baselined"] is False
        assert len(finding["fingerprint"]) == 16

    def test_out_writes_the_json_artifact(self, tmp_path, capsys):
        path = self._fixture(tmp_path)
        artifact = tmp_path / "report" / "analyze.json"
        main([str(path), "--out", str(artifact)])
        payload = json.loads(artifact.read_text(encoding="utf-8"))
        assert payload["summary"]["findings"] == 1

    def test_baseline_ratchet(self, tmp_path, capsys):
        path = self._fixture(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main([str(path), "--baseline", str(baseline),
                     "--update-baseline"]) == 0
        capsys.readouterr()
        # Baselined debt keeps the gate green...
        assert main([str(path), "--baseline", str(baseline)]) == 0
        assert "1 baselined" in capsys.readouterr().out
        # ...until a *new* finding appears.
        other = tmp_path / "second.py"
        other.write_text(BUGGY, encoding="utf-8")
        assert main([str(tmp_path), "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "second.py" in out

    def test_stale_entries_are_reported_not_fatal(self, tmp_path, capsys):
        path = self._fixture(tmp_path)
        baseline = tmp_path / "baseline.json"
        main([str(path), "--baseline", str(baseline), "--update-baseline"])
        path.write_text(CLEAN, encoding="utf-8")
        capsys.readouterr()
        assert main([str(path), "--baseline", str(baseline)]) == 0
        assert "stale baseline" in capsys.readouterr().out

    def test_update_baseline_requires_baseline(self, tmp_path):
        path = self._fixture(tmp_path)
        assert main([str(path), "--update-baseline"]) == 2

    def test_rules_filter(self, tmp_path, capsys):
        path = self._fixture(tmp_path)
        assert main([str(path), "--rules", "QA205"]) == 0
        capsys.readouterr()
        assert main([str(path), "--rules", "QA201"]) == 1

    def test_unknown_rule_filter_is_a_usage_error(self, tmp_path):
        path = self._fixture(tmp_path, CLEAN)
        assert main([str(path), "--rules", "QA999"]) == 2

    def test_missing_path_is_a_usage_error(self, tmp_path):
        assert main([str(tmp_path / "missing")]) == 2

    def test_explain_known_rule(self, capsys):
        assert main(["--explain", "QA203"]) == 0
        out = capsys.readouterr().out
        assert "QA203" in out
        assert "fix hint:" in out

    def test_explain_unknown_rule(self):
        assert main(["--explain", "QA999"]) == 2

    def test_list_rules_covers_both_series(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("QA101", "QA107", "QA201", "QA206"):
            assert rule in out

    def test_suppress_drops_findings(self, tmp_path, capsys):
        path = self._fixture(tmp_path)
        assert main([str(path), "--suppress", "QA201"]) == 0
        assert "1 suppressed" in capsys.readouterr().out


class TestRepositoryIsCleanAgainstBaseline:
    def test_src_repro_has_no_new_findings(self):
        from pathlib import Path

        repo_root = Path(__file__).resolve().parents[2]
        result = analyze_paths([repo_root / "src" / "repro"])
        entries = load_baseline(repo_root / "qa" / "baseline.json")
        applied = apply_baseline(result.report, entries)
        assert applied.new == [], "\n".join(
            d.format() for d in applied.new
        )
        # Every baselined entry must still exist and carry a real
        # justification -- prune stale debt, own the rest.
        assert applied.stale == []
        assert all(
            e.justification and "TODO" not in e.justification
            for e in entries
        )
