"""Repo-specific AST lint: one fixture file per rule, plus the real tree."""

from pathlib import Path

import pytest

from repro.qa.astlint import LINT_RULES, lint_file, lint_paths, main

REPO_ROOT = Path(__file__).resolve().parents[2]


def lint_source(tmp_path, source, name="mod.py"):
    path = tmp_path / name
    path.write_text(source, encoding="utf-8")
    return lint_file(path)


def rules_fired(findings):
    return {d.rule for d in findings}


class TestQA101ExplicitInverse:
    def test_np_linalg_inv(self, tmp_path):
        findings = lint_source(tmp_path, (
            "import numpy as np\n"
            "x = np.linalg.inv(m)\n"
        ))
        assert rules_fired(findings) == {"QA101"}
        assert ":2:" in findings[0].location

    def test_from_import_alias(self, tmp_path):
        findings = lint_source(tmp_path, (
            "from numpy.linalg import inv as matinv\n"
            "x = matinv(m)\n"
        ))
        assert rules_fired(findings) == {"QA101"}

    def test_scipy_linalg_module_alias(self, tmp_path):
        findings = lint_source(tmp_path, (
            "import scipy.linalg as sla\n"
            "x = sla.inv(m)\n"
        ))
        assert rules_fired(findings) == {"QA101"}

    def test_factor_and_solve_is_clean(self, tmp_path):
        findings = lint_source(tmp_path, (
            "import scipy.linalg as sla\n"
            "lu = sla.lu_factor(m)\n"
            "x = sla.lu_solve(lu, b)\n"
        ))
        assert findings == []

    def test_unrelated_inv_name_is_clean(self, tmp_path):
        # A method merely *called* inv on an unknown object is not flagged.
        findings = lint_source(tmp_path, "x = transform.inv(m)\n")
        assert findings == []

    def test_suppression_comment(self, tmp_path):
        findings = lint_source(tmp_path, (
            "import numpy as np\n"
            "x = np.linalg.inv(m)  # qa: ignore[QA101]\n"
        ))
        assert findings == []

    def test_blanket_suppression(self, tmp_path):
        findings = lint_source(tmp_path, (
            "import numpy as np\n"
            "x = np.linalg.inv(m)  # qa: ignore\n"
        ))
        assert findings == []

    def test_suppressing_a_different_rule_does_not_silence(self, tmp_path):
        findings = lint_source(tmp_path, (
            "import numpy as np\n"
            "x = np.linalg.inv(m)  # qa: ignore[QA104]\n"
        ))
        assert rules_fired(findings) == {"QA101"}


class TestQA102MutableDefault:
    def test_list_literal_default(self, tmp_path):
        findings = lint_source(tmp_path, "def f(x=[]):\n    return x\n")
        assert rules_fired(findings) == {"QA102"}

    def test_dict_constructor_default(self, tmp_path):
        findings = lint_source(tmp_path, "def f(*, x=dict()):\n    return x\n")
        assert rules_fired(findings) == {"QA102"}

    def test_none_default_is_clean(self, tmp_path):
        findings = lint_source(tmp_path, (
            "def f(x=None):\n"
            "    return [] if x is None else x\n"
        ))
        assert findings == []

    def test_tuple_default_is_clean(self, tmp_path):
        findings = lint_source(tmp_path, "def f(x=()):\n    return x\n")
        assert findings == []


class TestQA103InitAll:
    def test_init_with_imports_and_no_all(self, tmp_path):
        findings = lint_source(
            tmp_path, "from pkg.mod import thing\n", name="__init__.py"
        )
        assert rules_fired(findings) == {"QA103"}

    def test_init_with_all_is_clean(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "from pkg.mod import thing\n__all__ = ['thing']\n",
            name="__init__.py",
        )
        assert findings == []

    def test_empty_init_is_clean(self, tmp_path):
        findings = lint_source(tmp_path, "", name="__init__.py")
        assert findings == []

    def test_non_init_module_needs_no_all(self, tmp_path):
        findings = lint_source(tmp_path, "from pkg.mod import thing\n")
        assert findings == []


class TestQA104FloatOfComplex:
    def test_float_of_impedance(self, tmp_path):
        findings = lint_source(tmp_path, "x = float(res.impedance[0])\n")
        assert rules_fired(findings) == {"QA104"}

    def test_real_part_is_clean(self, tmp_path):
        findings = lint_source(tmp_path, "x = float(res.impedance[0].real)\n")
        # .real is also an Attribute walk hit on .impedance -- the rule
        # still fires so the author writes `res.impedance[0].real` without
        # the redundant float(), or suppresses deliberately.
        assert rules_fired(findings) <= {"QA104"}

    def test_plain_float_is_clean(self, tmp_path):
        findings = lint_source(tmp_path, "x = float(res.delay)\n")
        assert findings == []


class TestQA105SilentBroadExcept:
    def test_bare_except_pass(self, tmp_path):
        findings = lint_source(tmp_path, (
            "try:\n"
            "    risky()\n"
            "except:\n"
            "    pass\n"
        ))
        assert rules_fired(findings) == {"QA105"}

    def test_except_exception_pass(self, tmp_path):
        findings = lint_source(tmp_path, (
            "try:\n"
            "    risky()\n"
            "except Exception:\n"
            "    pass\n"
        ))
        assert rules_fired(findings) == {"QA105"}

    def test_except_base_exception_ellipsis(self, tmp_path):
        findings = lint_source(tmp_path, (
            "try:\n"
            "    risky()\n"
            "except BaseException:\n"
            "    ...\n"
        ))
        assert rules_fired(findings) == {"QA105"}

    def test_broad_type_in_tuple(self, tmp_path):
        findings = lint_source(tmp_path, (
            "try:\n"
            "    risky()\n"
            "except (ValueError, Exception):\n"
            "    pass\n"
        ))
        assert rules_fired(findings) == {"QA105"}

    def test_narrow_except_pass_is_clean(self, tmp_path):
        # Deliberately ignoring a *specific* exception is a judgment
        # call, not a lint error.
        findings = lint_source(tmp_path, (
            "try:\n"
            "    risky()\n"
            "except FileNotFoundError:\n"
            "    pass\n"
        ))
        assert findings == []

    def test_broad_except_with_handling_is_clean(self, tmp_path):
        findings = lint_source(tmp_path, (
            "try:\n"
            "    risky()\n"
            "except Exception as exc:\n"
            "    log(exc)\n"
        ))
        assert findings == []

    def test_suppression_comment(self, tmp_path):
        findings = lint_source(tmp_path, (
            "try:\n"
            "    risky()\n"
            "except Exception:  # qa: ignore[QA105]\n"
            "    pass\n"
        ))
        assert findings == []


class TestQA106AdHocTiming:
    def test_time_module_call(self, tmp_path):
        findings = lint_source(tmp_path, (
            "import time\n"
            "t0 = time.perf_counter()\n"
        ))
        assert rules_fired(findings) == {"QA106"}

    def test_from_import_alias(self, tmp_path):
        findings = lint_source(tmp_path, (
            "from time import perf_counter as pc\n"
            "t0 = pc()\n"
        ))
        assert rules_fired(findings) == {"QA106"}

    def test_module_alias(self, tmp_path):
        findings = lint_source(tmp_path, (
            "import time as _t\n"
            "t0 = _t.monotonic()\n"
        ))
        assert rules_fired(findings) == {"QA106"}

    def test_sleep_is_clean(self, tmp_path):
        # Only the clock reads are flagged, not the rest of the module.
        findings = lint_source(tmp_path, (
            "import time\n"
            "time.sleep(0.1)\n"
        ))
        assert findings == []

    def test_unrelated_name_is_clean(self, tmp_path):
        findings = lint_source(tmp_path, (
            "def perf_counter():\n"
            "    return 0\n"
            "t0 = perf_counter()\n"
        ))
        assert findings == []

    def test_obs_package_is_exempt(self, tmp_path):
        obs = tmp_path / "obs"
        obs.mkdir()
        path = obs / "trace.py"
        path.write_text("import time\nt0 = time.perf_counter()\n")
        assert lint_file(path) == []

    def test_bench_module_is_exempt(self, tmp_path):
        perf = tmp_path / "perf"
        perf.mkdir()
        path = perf / "bench.py"
        path.write_text("import time\nt0 = time.perf_counter()\n")
        assert lint_file(path) == []

    def test_suppression_comment(self, tmp_path):
        findings = lint_source(tmp_path, (
            "import time\n"
            "t0 = time.perf_counter()  # qa: ignore[QA106]\n"
        ))
        assert findings == []


class TestDriver:
    def test_syntax_error_reports_qa000(self, tmp_path):
        findings = lint_source(tmp_path, "def broken(:\n")
        assert rules_fired(findings) == {"QA000"}

    def test_lint_paths_aggregates_and_suppresses(self, tmp_path):
        (tmp_path / "a.py").write_text(
            "import numpy as np\nx = np.linalg.inv(m)\n"
        )
        (tmp_path / "b.py").write_text("def f(x=[]):\n    return x\n")
        report = lint_paths([tmp_path])
        assert rules_fired(report) == {"QA101", "QA102"}
        report = lint_paths([tmp_path], suppress=("QA102",))
        assert rules_fired(report) == {"QA101"}
        assert report.num_suppressed == 1

    def test_main_exit_codes(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nx = np.linalg.inv(m)\n")
        assert main([str(bad)]) == 1
        assert "QA101" in capsys.readouterr().out
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        assert main([str(good)]) == 0

    def test_missing_path_is_a_clean_error(self, tmp_path, capsys):
        assert main([str(tmp_path / "nowhere")]) == 2
        assert "nowhere" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in LINT_RULES:
            assert rule in out


class TestQA107UnseededRng:
    def test_attribute_form_fires(self, tmp_path):
        findings = lint_source(tmp_path, (
            "import numpy as np\n"
            "rng = np.random.default_rng()\n"
        ))
        assert rules_fired(findings) == {"QA107"}
        assert ":2:" in findings[0].location

    def test_from_import_form_fires(self, tmp_path):
        findings = lint_source(tmp_path, (
            "from numpy.random import default_rng\n"
            "rng = default_rng()\n"
        ))
        assert rules_fired(findings) == {"QA107"}

    def test_aliased_import_fires(self, tmp_path):
        findings = lint_source(tmp_path, (
            "from numpy.random import default_rng as make_rng\n"
            "rng = make_rng()\n"
        ))
        assert rules_fired(findings) == {"QA107"}

    def test_seeded_calls_are_clean(self, tmp_path):
        findings = lint_source(tmp_path, (
            "import numpy as np\n"
            "a = np.random.default_rng(42)\n"
            "b = np.random.default_rng(seed=None)\n"  # explicit opt-in
        ))
        assert "QA107" not in rules_fired(findings)

    def test_unrelated_default_rng_name_is_clean(self, tmp_path):
        findings = lint_source(tmp_path, (
            "def default_rng():\n"
            "    return 1\n"
            "x = default_rng()\n"
        ))
        assert "QA107" not in rules_fired(findings)

    def test_test_files_are_exempt(self, tmp_path):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng()\n"
        )
        assert "QA107" not in rules_fired(
            lint_source(tmp_path, source, name="test_fuzz.py")
        )
        assert "QA107" not in rules_fired(
            lint_source(tmp_path, source, name="conftest.py")
        )

    def test_suppression_comment(self, tmp_path):
        findings = lint_source(tmp_path, (
            "import numpy as np\n"
            "rng = np.random.default_rng()  # qa: ignore[QA107]\n"
        ))
        assert "QA107" not in rules_fired(findings)


class TestRepositoryIsClean:
    def test_src_tree_passes_the_lint(self):
        # The PR's own acceptance bar: the shipped tree has no findings.
        report = lint_paths([REPO_ROOT / "src"])
        assert list(report) == [], report.format()
