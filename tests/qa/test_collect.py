"""Tests for repro.qa.collect: circuit capture and script execution."""

import pytest

from repro.circuit.netlist import Circuit
from repro.qa.collect import capture_circuits, collect_circuits_from_script
from repro.qa.diagnostics import DiagnosticReport


class TestCaptureCircuits:
    def test_records_every_instance_in_creation_order(self):
        with capture_circuits() as created:
            a = Circuit("a")
            b = Circuit("b")
        assert created == [a, b]

    def test_nothing_recorded_outside_the_block(self):
        with capture_circuits() as created:
            pass
        Circuit("after")
        assert created == []

    def test_init_is_restored_after_the_block(self):
        original = Circuit.__init__
        with capture_circuits():
            assert Circuit.__init__ is not original
        assert Circuit.__init__ is original

    def test_init_is_restored_even_when_the_body_raises(self):
        original = Circuit.__init__
        with pytest.raises(RuntimeError):
            with capture_circuits():
                raise RuntimeError("boom")
        assert Circuit.__init__ is original

    def test_captured_circuits_are_fully_constructed(self):
        with capture_circuits() as created:
            c = Circuit("rc")
            c.add_resistor("R1", "in", "out", 50.0)
        assert created[0] is c
        assert len(created[0].resistors) == 1


class TestCollectCircuitsFromScript:
    def _write(self, tmp_path, body, name="script.py"):
        path = tmp_path / name
        path.write_text(body, encoding="utf-8")
        return path

    def test_collects_circuits_built_by_the_script(self, tmp_path):
        path = self._write(tmp_path, (
            "from repro.circuit.netlist import Circuit\n"
            "c = Circuit('from_script')\n"
            "c.add_resistor('R1', 'a', 'b', 1.0)\n"
        ))
        circuits, runtime = collect_circuits_from_script(path)
        assert [c.name for c in circuits] == ["from_script"]
        assert isinstance(runtime, DiagnosticReport)
        assert len(runtime) == 0

    def test_script_runs_as_main(self, tmp_path):
        path = self._write(tmp_path, (
            "from repro.circuit.netlist import Circuit\n"
            "if __name__ == '__main__':\n"
            "    Circuit('guarded')\n"
        ))
        circuits, _ = collect_circuits_from_script(path)
        assert [c.name for c in circuits] == ["guarded"]

    def test_stdout_is_swallowed(self, tmp_path, capsys):
        path = self._write(tmp_path, "print('noise')\n")
        collect_circuits_from_script(path)
        assert capsys.readouterr().out == ""

    def test_clean_sys_exit_is_fine(self, tmp_path):
        path = self._write(tmp_path, (
            "import sys\n"
            "from repro.circuit.netlist import Circuit\n"
            "Circuit('done')\n"
            "sys.exit(0)\n"
        ))
        circuits, _ = collect_circuits_from_script(path)
        assert [c.name for c in circuits] == ["done"]

    def test_failing_sys_exit_propagates(self, tmp_path):
        path = self._write(tmp_path, "import sys\nsys.exit(3)\n")
        with pytest.raises(SystemExit):
            collect_circuits_from_script(path)

    def test_script_exceptions_propagate(self, tmp_path):
        path = self._write(tmp_path, "raise ValueError('broken example')\n")
        with pytest.raises(ValueError, match="broken example"):
            collect_circuits_from_script(path)

    def test_missing_script_raises(self, tmp_path):
        with pytest.raises((FileNotFoundError, OSError)):
            collect_circuits_from_script(tmp_path / "nope.py")

    def test_sanitized_run_returns_live_runtime_report(self, tmp_path):
        path = self._write(tmp_path, (
            "from repro.circuit.netlist import Circuit\n"
            "Circuit('sane')\n"
        ))
        circuits, runtime = collect_circuits_from_script(
            path, run_sanitized=True
        )
        assert [c.name for c in circuits] == ["sane"]
        assert isinstance(runtime, DiagnosticReport)
