"""The `repro check` / `repro lint` subcommands end to end."""

import textwrap
from pathlib import Path

import pytest

from repro.cli import main

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

CLEAN_DECK = textwrap.dedent("""\
    * clean driver - line - load
    V1 in 0 DC 1
    Rdrv in a 10
    L1 a b 1n
    Rload b 0 50
    C1 b 0 10f
    .end
""")

# Pairwise couplings each |k| = 0.6 < 1, yet the assembled inductance
# matrix is indefinite: the ERC must catch it before any simulation.
CORRUPTED_DECK = textwrap.dedent("""\
    * truncation-corrupted inductance block
    V1 in 0 DC 1
    Rdrv in a 10
    L1 a b 1n
    L2 b c 1n
    L3 c d 1n
    K12 L1 L2 -0.6
    K13 L1 L3 -0.6
    K23 L2 L3 -0.6
    Rload d 0 50
    .end
""")


class TestCheckDecks:
    def test_clean_deck_exits_zero(self, tmp_path, capsys):
        deck = tmp_path / "clean.sp"
        deck.write_text(CLEAN_DECK)
        assert main(["check", str(deck)]) == 0
        out = capsys.readouterr().out
        assert "0 errors" in out
        assert "check: ok" in out

    def test_non_spd_deck_fails_before_simulation(self, tmp_path, capsys):
        deck = tmp_path / "corrupted.sp"
        deck.write_text(CORRUPTED_DECK)
        assert main(["check", str(deck)]) == 1
        out = capsys.readouterr().out
        assert "erc.non-passive-inductance" in out
        assert "check: FAIL" in out

    def test_suppressing_the_rule_restores_success(self, tmp_path):
        deck = tmp_path / "corrupted.sp"
        deck.write_text(CORRUPTED_DECK)
        assert main([
            "check", str(deck),
            "--suppress", "erc.non-passive-inductance",
        ]) == 0

    def test_unsupported_suffix_exits_two(self, tmp_path, capsys):
        stray = tmp_path / "notes.txt"
        stray.write_text("not a deck")
        assert main(["check", str(stray)]) == 2
        assert "unsupported input" in capsys.readouterr().out

    def test_worst_exit_code_wins_across_inputs(self, tmp_path):
        good = tmp_path / "good.sp"
        good.write_text(CLEAN_DECK)
        bad = tmp_path / "bad.sp"
        bad.write_text(CORRUPTED_DECK)
        assert main(["check", str(good), str(bad)]) == 1


class TestCheckScripts:
    def make_script(self, tmp_path, body):
        script = tmp_path / "model.py"
        script.write_text(textwrap.dedent(body))
        return script

    def test_clean_script_exits_zero(self, tmp_path, capsys):
        script = self.make_script(tmp_path, """\
            from repro.circuit.netlist import GROUND, Circuit

            c = Circuit("demo")
            c.add_vsource("v", "a", GROUND, 1.0)
            c.add_resistor("r", "a", GROUND, 10.0)
        """)
        assert main(["check", str(script)]) == 0
        assert "demo" in capsys.readouterr().out

    def test_script_stdout_is_swallowed(self, tmp_path, capsys):
        script = self.make_script(tmp_path, """\
            from repro.circuit.netlist import GROUND, Circuit

            c = Circuit("quiet")
            c.add_vsource("v", "a", GROUND, 1.0)
            c.add_resistor("r", "a", GROUND, 10.0)
            print("SCRIPT NOISE")
        """)
        assert main(["check", str(script)]) == 0
        assert "SCRIPT NOISE" not in capsys.readouterr().out

    def test_strict_escalates_warnings(self, tmp_path):
        script = self.make_script(tmp_path, """\
            from repro.circuit.netlist import GROUND, Circuit

            c = Circuit("stubby")
            c.add_vsource("v", "a", GROUND, 1.0)
            c.add_resistor("r", "a", GROUND, 10.0)
            c.add_resistor("rstub", "a", "stub", 1.0)
        """)
        assert main(["check", str(script)]) == 0
        assert main(["check", str(script), "--strict"]) == 1

    def test_missing_deck_is_a_clean_error(self, tmp_path, capsys):
        assert main(["check", str(tmp_path / "missing.sp")]) == 2
        out = capsys.readouterr().out
        assert "missing.sp" in out
        assert "check: FAIL" in out

    def test_crashing_script_is_reported_not_raised(self, tmp_path, capsys):
        script = self.make_script(tmp_path, "raise RuntimeError('boom')\n")
        assert main(["check", str(script)]) == 1
        assert "script raised RuntimeError: boom" in capsys.readouterr().out

    def test_script_calling_sys_exit_zero_is_fine(self, tmp_path):
        script = self.make_script(tmp_path, """\
            import sys

            from repro.circuit.netlist import GROUND, Circuit

            c = Circuit("exits")
            c.add_vsource("v", "a", GROUND, 1.0)
            c.add_resistor("r", "a", GROUND, 10.0)
            sys.exit(0)
        """)
        assert main(["check", str(script)]) == 0

    def test_script_calling_sys_exit_nonzero_fails(self, tmp_path, capsys):
        script = self.make_script(tmp_path, "import sys\nsys.exit(3)\n")
        assert main(["check", str(script)]) == 1
        assert "exited with status 3" in capsys.readouterr().out

    def test_script_without_circuits_is_reported(self, tmp_path, capsys):
        script = self.make_script(tmp_path, "x = 1\n")
        assert main(["check", str(script)]) == 0
        assert "no circuits constructed" in capsys.readouterr().out

    def test_sanitize_flag_surfaces_runtime_findings(self, tmp_path, capsys):
        script = self.make_script(tmp_path, """\
            import numpy as np

            from repro.circuit.mna import MNASystem
            from repro.circuit.netlist import GROUND, Circuit

            matrix = np.array([
                [1.0, -0.6, -0.6],
                [-0.6, 1.0, -0.6],
                [-0.6, -0.6, 1.0],
            ]) * 1e-9
            c = Circuit("corrupted")
            c.add_vsource("v", "a", GROUND, 1.0)
            c.add_resistor("r0", "a", "x0", 1.0)
            c.add_inductor_set(
                "Lblk", [("x0", "y0"), ("x1", "y1"), ("x2", "y2")], matrix
            )
            for i in range(3):
                c.add_resistor(f"ry{i}", f"y{i}", GROUND, 1.0)
                if i:
                    c.add_resistor(f"rx{i}", f"x{i}", GROUND, 1.0)
            MNASystem(c).build_matrices()
        """)
        assert main(["check", str(script), "--sanitize"]) == 1
        out = capsys.readouterr().out
        assert "sanitizer findings" in out
        assert "qa.non-spd" in out


class TestLintSubcommand:
    def test_lint_flags_explicit_inverse(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nx = np.linalg.inv(m)\n")
        assert main(["lint", str(bad)]) == 1
        assert "QA101" in capsys.readouterr().out

    def test_lint_suppression_flag(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nx = np.linalg.inv(m)\n")
        assert main(["lint", str(bad), "--suppress", "QA101"]) == 0

    def test_lint_clean_file(self, tmp_path):
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        assert main(["lint", str(good)]) == 0


@pytest.mark.slow
class TestExamplesStayClean:
    def test_every_example_script_checks_clean(self, capsys):
        examples = sorted(EXAMPLES.glob("*.py"))
        assert examples
        assert main(["check"] + [str(p) for p in examples]) == 0
