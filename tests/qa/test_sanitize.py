"""Runtime numerics sanitizer: SPD, finiteness, and energy checks."""

import numpy as np
import pytest

from repro.circuit.mna import MNASystem
from repro.circuit.netlist import GROUND, Circuit
from repro.circuit.transient import TransientResult, transient_analysis
from repro.extraction.partial_matrix import PartialInductanceResult
from repro.qa import PassivityError, SanitizePolicy, sanitize
from repro.sparsify.base import DenseInductance, Sparsifier
from repro.sparsify.truncation import TruncationSparsifier

INDEFINITE = np.array([
    [1.0, -0.6, -0.6],
    [-0.6, 1.0, -0.6],
    [-0.6, -0.6, 1.0],
]) * 1e-9


def make_indefinite_circuit() -> Circuit:
    c = Circuit("corrupted")
    c.add_vsource("v", "a", GROUND, 1.0)
    c.add_resistor("r0", "a", "x0", 1.0)
    c.add_inductor_set(
        "Lblk", [("x0", "y0"), ("x1", "y1"), ("x2", "y2")], INDEFINITE
    )
    for i in range(3):
        c.add_resistor(f"ry{i}", f"y{i}", GROUND, 1.0)
        if i:
            c.add_resistor(f"rx{i}", f"x{i}", GROUND, 1.0)
    return c


def kms_extraction(n=4, r=0.7) -> PartialInductanceResult:
    """SPD partial-L matrix whose naive truncation goes indefinite.

    The Kac-Murdock-Szego matrix ``0.7^|i-j|`` is positive definite, but
    thresholding at 0.5 leaves a tridiagonal whose smallest eigenvalue is
    ``1 - 1.4 cos(pi/5) < 0`` -- exactly the paper's truncation failure.
    """
    idx = np.arange(n)
    matrix = r ** np.abs(idx[:, None] - idx[None, :]) * 1e-9
    assert np.linalg.eigvalsh(matrix)[0] > 0
    return PartialInductanceResult(segments=[], matrix=matrix)


class TestPolicy:
    def test_rejects_unknown_violation_mode(self):
        with pytest.raises(ValueError, match="on_violation"):
            SanitizePolicy(on_violation="explode")

    def test_policy_or_kwargs_not_both(self):
        with pytest.raises(ValueError):
            sanitize(SanitizePolicy(), check_energy=False)


class TestSPDAtMNACompile:
    def test_non_spd_inductor_set_raises_before_solving(self):
        c = make_indefinite_circuit()
        with sanitize() as guard:
            with pytest.raises(PassivityError, match="generate energy"):
                MNASystem(c).build_matrices()
        assert {d.rule for d in guard.diagnostics} == {"qa.non-spd"}

    def test_transient_on_corrupted_circuit_is_stopped(self):
        c = make_indefinite_circuit()
        with sanitize():
            with pytest.raises(PassivityError):
                transient_analysis(c, 1e-10, 1e-12)

    def test_clean_circuit_passes_untouched(self):
        c = Circuit("ok")
        c.add_vsource("v", "a", GROUND, 1.0)
        c.add_resistor("r", "a", "b", 1.0)
        c.add_inductor_set(
            "L", [("b", "c")], np.array([[1e-9]])
        )
        c.add_resistor("rl", "c", GROUND, 1.0)
        with sanitize() as guard:
            MNASystem(c).build_matrices()
        assert list(guard.diagnostics) == []


class TestSparsifierInstrumentation:
    def test_truncation_losing_spd_is_caught(self):
        extraction = kms_extraction()
        with sanitize():
            with pytest.raises(PassivityError, match="not positive definite"):
                TruncationSparsifier(threshold=0.5).apply(extraction)

    def test_dense_strategy_is_clean(self):
        extraction = kms_extraction()
        with sanitize() as guard:
            DenseInductance().apply(extraction)
        assert list(guard.diagnostics) == []

    def test_collect_policy_records_instead_of_raising(self):
        extraction = kms_extraction()
        with sanitize(on_violation="collect") as guard:
            TruncationSparsifier(threshold=0.5).apply(extraction)
        bad = list(guard.diagnostics)
        assert len(bad) == 1
        assert bad[0].rule == "qa.non-spd"
        assert "TruncationSparsifier" in bad[0].location

    def test_warn_policy_emits_runtime_warning(self):
        extraction = kms_extraction()
        with sanitize(on_violation="warn") as guard:
            with pytest.warns(RuntimeWarning, match="generate energy"):
                TruncationSparsifier(threshold=0.5).apply(extraction)
        assert not guard.diagnostics.ok


def run_source_free_rc():
    """A real RC discharge (no sources): reference clean trajectory."""
    c = Circuit("discharge")
    c.add_resistor("r", "a", GROUND, 1.0)
    c.add_capacitor("c", "a", GROUND, 1e-12)
    return transient_analysis(c, 1e-9, 5e-11, x0=np.array([1.0]))


class TestTransientChecks:
    def test_clean_decay_has_no_findings(self):
        with sanitize() as guard:
            run_source_free_rc()
        assert list(guard.diagnostics) == []

    def test_nan_state_is_reported(self):
        ref = run_source_free_rc()
        bad = ref.data.copy()
        bad[7, 0] = np.nan
        with sanitize() as guard:
            with pytest.raises(PassivityError, match="NaN/Inf"):
                TransientResult(times=ref.times, data=bad,
                                columns=ref.columns, system=ref.system)
        assert {d.rule for d in guard.diagnostics} == {"qa.nonfinite-state"}

    def test_energy_growth_in_source_free_interval(self):
        ref = run_source_free_rc()
        growing = np.exp(np.linspace(0.0, 1.0, len(ref.times)))[:, None]
        with sanitize() as guard:
            with pytest.raises(PassivityError, match="source-free"):
                TransientResult(times=ref.times, data=growing,
                                columns=ref.columns, system=ref.system)
        assert {d.rule for d in guard.diagnostics} == {"qa.energy-growth"}

    def test_energy_check_skipped_on_partial_state(self):
        # Growing data, but only part of the state was recorded: the
        # quadratic form is not the stored energy, so no verdict.
        c = Circuit("two")
        c.add_resistor("r", "a", "b", 1.0)
        c.add_capacitor("ca", "a", GROUND, 1e-12)
        c.add_capacitor("cb", "b", GROUND, 1e-12)
        system = MNASystem(c)
        assert system.size == 2
        times = np.arange(21) * 5e-11
        growing = np.exp(np.linspace(0.0, 1.0, len(times)))[:, None]
        with sanitize() as guard:
            TransientResult(times=times, data=growing,
                            columns=["a"], system=system)
        assert list(guard.diagnostics) == []

    def test_energy_check_can_be_disabled(self):
        ref = run_source_free_rc()
        growing = np.exp(np.linspace(0.0, 1.0, len(ref.times)))[:, None]
        with sanitize(check_energy=False) as guard:
            TransientResult(times=ref.times, data=growing,
                            columns=ref.columns, system=ref.system)
        assert list(guard.diagnostics) == []


class TestPatchHygiene:
    def test_instrumentation_is_removed_on_exit(self):
        saved = (
            MNASystem.__dict__["build_matrices"],
            TransientResult.__dict__["__post_init__"],
            TruncationSparsifier.__dict__["apply"],
        )
        with sanitize():
            assert MNASystem.__dict__["build_matrices"] is not saved[0]
            assert TransientResult.__dict__["__post_init__"] is not saved[1]
            assert TruncationSparsifier.__dict__["apply"] is not saved[2]
        assert MNASystem.__dict__["build_matrices"] is saved[0]
        assert TransientResult.__dict__["__post_init__"] is saved[1]
        assert TruncationSparsifier.__dict__["apply"] is saved[2]

    def test_restored_even_when_the_body_raises(self):
        saved = MNASystem.__dict__["build_matrices"]
        with pytest.raises(RuntimeError, match="boom"):
            with sanitize():
                raise RuntimeError("boom")
        assert MNASystem.__dict__["build_matrices"] is saved

    def test_every_concrete_sparsifier_is_instrumented(self):
        def concrete(base):
            for sub in base.__subclasses__():
                if "apply" in sub.__dict__:
                    yield sub
                yield from concrete(sub)

        targets = set(concrete(Sparsifier))
        assert TruncationSparsifier in targets
        with sanitize():
            for cls in targets:
                assert "qa/sanitize" in cls.__dict__["apply"].__code__.co_filename
