"""Tests for the shared ``# qa: ignore[...]`` comment parsing.

This is the one suppression syntax used by both the per-file AST lint
and the project-wide analyzer; the comma-separated list form and the
rule-aware handling of line-1 comments (QA103) regressed before, so
both are pinned here.
"""

from repro.qa import astlint
from repro.qa.analyze.ignores import is_suppressed, suppressed_rules


class TestSuppressedRules:
    def test_no_comment_means_no_suppression(self):
        assert suppressed_rules("x = np.interp(a, b, c)") is None

    def test_unrelated_comment_means_no_suppression(self):
        assert suppressed_rules("x = 1  # tuned by hand") is None

    def test_blanket_ignore_is_empty_set(self):
        assert suppressed_rules("x = 1  # qa: ignore") == frozenset()

    def test_single_rule(self):
        assert suppressed_rules("x  # qa: ignore[QA101]") == {"QA101"}

    def test_comma_separated_list(self):
        assert suppressed_rules(
            "x  # qa: ignore[QA101,QA106]"
        ) == {"QA101", "QA106"}

    def test_spaces_after_commas_are_fine(self):
        assert suppressed_rules(
            "x  # qa: ignore[QA101, QA203, QA204]"
        ) == {"QA101", "QA203", "QA204"}

    def test_flexible_comment_spacing(self):
        assert suppressed_rules("x #qa:ignore[QA102]") == {"QA102"}

    def test_trailing_prose_after_the_bracket_is_fine(self):
        assert suppressed_rules(
            "x  # qa: ignore[QA203] -- initializer idiom, fork-safe"
        ) == {"QA203"}

    def test_empty_brackets_do_not_become_a_blanket_waiver(self):
        assert suppressed_rules("x  # qa: ignore[]") is None

    def test_garbage_payload_does_not_become_a_blanket_waiver(self):
        assert suppressed_rules("x  # qa: ignore[???]") is None
        assert suppressed_rules("x  # qa: ignore[QA101, !!]") is None

    def test_rule_ids_are_case_sensitive(self):
        rules = suppressed_rules("x  # qa: ignore[qa101]")
        assert rules == {"qa101"}
        assert "QA101" not in rules


class TestIsSuppressed:
    def test_blanket_suppresses_every_rule(self):
        assert is_suppressed("QA101", "x  # qa: ignore")
        assert is_suppressed("QA206", "x  # qa: ignore")

    def test_listed_rule_is_suppressed_others_are_not(self):
        line = "x  # qa: ignore[QA101,QA106]"
        assert is_suppressed("QA101", line)
        assert is_suppressed("QA106", line)
        assert not is_suppressed("QA104", line)

    def test_no_comment_suppresses_nothing(self):
        assert not is_suppressed("QA101", "x = 1")


class TestAstlintLineOneSuppression:
    """QA103 fires on line 1 of an ``__init__.py``; the suppression
    lookup there must be rule-aware, not any-comment-wins (the old
    ``_check_init_all`` treated *any* ignore comment as silencing
    QA103)."""

    BODY = "from repro.qa import astlint\n"

    def _lint_init(self, tmp_path, first_line):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        init = pkg / "__init__.py"
        init.write_text(first_line + "\n" + self.BODY, encoding="utf-8")
        return [d.rule for d in astlint.lint_file(init)]

    def test_fires_without_a_comment(self, tmp_path):
        assert "QA103" in self._lint_init(tmp_path, "# package")

    def test_blanket_ignore_suppresses(self, tmp_path):
        assert "QA103" not in self._lint_init(tmp_path, "# qa: ignore")

    def test_matching_rule_suppresses(self, tmp_path):
        assert "QA103" not in self._lint_init(
            tmp_path, "# qa: ignore[QA103]"
        )

    def test_unrelated_rule_does_not_suppress(self, tmp_path):
        assert "QA103" in self._lint_init(
            tmp_path, "# qa: ignore[QA101]"
        )

    def test_comma_list_containing_qa103_suppresses(self, tmp_path):
        assert "QA103" not in self._lint_init(
            tmp_path, "# qa: ignore[QA101, QA103]"
        )
