"""Fixture tests for the semantic rules QA201-QA208.

Every rule gets (at least) one *failing* fixture -- a deliberately
re-introduced instance of the bug class it encodes, including the
historical unsorted-``np.interp`` grid and raw-float factor-cache key --
and one *clean* fixture showing the blessed fix, which must not be
flagged.
"""

import textwrap

from repro.qa.analyze import analyze_paths
from repro.qa.analyze.project import Project
from repro.qa.analyze.symbols import SymbolTable


def run_rules(tmp_path, source, rules, name="fixture.py"):
    """Analyze one fixture module; return the fired (rule, line) pairs."""
    path = tmp_path / name
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    result = analyze_paths([path], rules=list(rules))
    return [
        (d.rule, int(d.location.rsplit(":", 2)[-2]))
        for d in result.report
    ]


def fired(tmp_path, source, rule):
    return [r for r, _ in run_rules(tmp_path, source, [rule])]


class TestQA201UnsortedInterp:
    def test_flags_the_reintroduced_extractor_bug(self, tmp_path):
        # The original LoopExtractionResult.at bug: interpolating over
        # the stored frequency grid without sorting it first.
        assert fired(tmp_path, """
            import numpy as np

            def at(freq, freqs, values):
                return complex(np.interp(freq, freqs, values))
        """, "QA201") == ["QA201"]

    def test_argsort_reorder_is_clean(self, tmp_path):
        assert fired(tmp_path, """
            import numpy as np

            def at(freq, freqs, values):
                order = np.argsort(freqs, kind="stable")
                freqs = freqs[order]
                values = values[order]
                return complex(np.interp(freq, freqs, values))
        """, "QA201") == []

    def test_np_sort_is_clean(self, tmp_path):
        assert fired(tmp_path, """
            import numpy as np

            def resample(grid, t, v):
                t = np.sort(t)
                return np.interp(grid, t, v)
        """, "QA201") == []

    def test_ascending_guard_is_clean(self, tmp_path):
        assert fired(tmp_path, """
            import numpy as np

            def resample(grid, t, v):
                if not np.all(np.diff(t) > 0):
                    raise ValueError("time base must be ascending")
                return np.interp(grid, t, v)
        """, "QA201") == []

    def test_linspace_grid_is_clean(self, tmp_path):
        assert fired(tmp_path, """
            import numpy as np

            def sample(v):
                t = np.linspace(0.0, 1.0, 64)
                return np.interp(0.5, t, v)
        """, "QA201") == []

    def test_aliased_numpy_import_is_still_seen(self, tmp_path):
        assert fired(tmp_path, """
            import numpy as xp_lib

            def at(freq, freqs, values):
                return xp_lib.interp(freq, freqs, values)
        """, "QA201") == ["QA201"]

    def test_ignore_comment_silences(self, tmp_path):
        assert fired(tmp_path, """
            import numpy as np

            def at(freq, freqs, values):
                return np.interp(freq, freqs, values)  # qa: ignore[QA201]
        """, "QA201") == []


class TestQA202RawFloatCacheKey:
    def test_flags_the_reintroduced_factor_cache_bug(self, tmp_path):
        # The PR 3 bug: the factor cache keyed on a computed alpha, so
        # ulp-level differences missed the cache every time.
        assert fired(tmp_path, """
            _FACTOR_CACHE = {}

            def factorize(n, dt, c):
                alpha = dt / c
                key = (n, alpha)
                if key not in _FACTOR_CACHE:
                    _FACTOR_CACHE[key] = object()
                return _FACTOR_CACHE[key]
        """, "QA202") != []

    def test_quantized_key_is_clean(self, tmp_path):
        assert fired(tmp_path, """
            _FACTOR_CACHE = {}

            def factorize(n, dt, c):
                alpha = dt / c
                key = (n, round(alpha, 12))
                if key not in _FACTOR_CACHE:
                    _FACTOR_CACHE[key] = object()
                return _FACTOR_CACHE[key]
        """, "QA202") == []

    def test_int_key_is_clean(self, tmp_path):
        assert fired(tmp_path, """
            _CACHE = {}

            def lookup(n):
                _CACHE[n] = n + 1
                return _CACHE[n]
        """, "QA202") == []

    def test_get_method_on_cache_is_checked(self, tmp_path):
        assert fired(tmp_path, """
            class Memo:
                pass

            def lookup(memo, x):
                alpha = x / 3.0
                return memo.get(alpha)
        """, "QA202") != []

    def test_non_cache_subscript_is_not_flagged(self, tmp_path):
        assert fired(tmp_path, """
            def lookup(table, x):
                alpha = x / 3.0
                return table[alpha]
        """, "QA202") == []


class TestQA203ForkUnsafeWorker:
    def test_flags_global_mutation_in_submitted_worker(self, tmp_path):
        rules = fired(tmp_path, """
            from concurrent.futures import ProcessPoolExecutor

            _COUNT = 0

            def _work(x):
                global _COUNT
                _COUNT = _COUNT + x
                return _COUNT

            def run(items):
                with ProcessPoolExecutor() as ex:
                    futs = [ex.submit(_work, i) for i in items]
                    return [f.result() for f in futs]
        """, "QA203")
        assert "QA203" in rules

    def test_flags_read_of_mutable_global_in_worker(self, tmp_path):
        assert "QA203" in fired(tmp_path, """
            from concurrent.futures import ProcessPoolExecutor

            _CONFIG = {"tol": 1e-9}

            def _work(x):
                return x * _CONFIG["tol"]

            def run(items):
                with ProcessPoolExecutor() as ex:
                    return list(ex.map(_work, items))
        """, "QA203")

    def test_argument_passing_worker_is_clean(self, tmp_path):
        assert fired(tmp_path, """
            from concurrent.futures import ProcessPoolExecutor

            def _work(x, tol):
                return x * tol

            def run(items, tol):
                with ProcessPoolExecutor() as ex:
                    futs = [ex.submit(_work, i, tol) for i in items]
                    return [f.result() for f in futs]
        """, "QA203") == []

    def test_unsubmitted_function_is_not_a_worker(self, tmp_path):
        # Same global access, but never shipped to a pool: not QA203's
        # business (plain module state has other owners).
        assert fired(tmp_path, """
            _COUNT = 0

            def bump(x):
                global _COUNT
                _COUNT = _COUNT + x
                return _COUNT
        """, "QA203") == []

    def test_ignore_comment_silences_the_initializer_idiom(self, tmp_path):
        assert fired(tmp_path, """
            from concurrent.futures import ProcessPoolExecutor

            _SPEC = None

            def _init(spec):
                global _SPEC  # qa: ignore[QA203]
                _SPEC = spec

            def _work(x):
                return x + _SPEC  # qa: ignore[QA203]

            def run(spec, items):
                with ProcessPoolExecutor(initializer=_init,
                                         initargs=(spec,)) as ex:
                    futs = [ex.submit(_work, i) for i in items]
                    return [f.result() for f in futs]
        """, "QA203") == []


class TestQA204SpanLifecycle:
    def test_flags_span_created_but_never_entered(self, tmp_path):
        assert "QA204" in fired(tmp_path, """
            from repro.obs.trace import span

            def timed(x):
                sp = span("stage")
                return x + 1
        """, "QA204")

    def test_flags_manual_enter_leaked_by_early_return(self, tmp_path):
        assert "QA204" in fired(tmp_path, """
            from repro.obs.trace import span

            def leaky(flag):
                sp = span("stage")
                sp.__enter__()
                if flag:
                    return None
                sp.__exit__(None, None, None)
                return 1
        """, "QA204")

    def test_with_statement_is_clean(self, tmp_path):
        assert fired(tmp_path, """
            from repro.obs.trace import span

            def timed(x):
                with span("stage"):
                    return x + 1
        """, "QA204") == []

    def test_enter_context_is_clean(self, tmp_path):
        assert fired(tmp_path, """
            import contextlib

            from repro.obs.trace import span

            def timed(x):
                with contextlib.ExitStack() as stack:
                    stack.enter_context(span("stage"))
                    return x + 1
        """, "QA204") == []

    def test_returning_the_context_manager_is_clean(self, tmp_path):
        # A factory handing the span to its caller is not a leak.
        assert fired(tmp_path, """
            from repro.obs.trace import span

            def make_span(name):
                sp = span(name)
                return sp
        """, "QA204") == []


class TestQA205ComplexNarrowing:
    def test_flags_float_of_dataflow_complex(self, tmp_path):
        assert fired(tmp_path, """
            def mag(omega, ell):
                z = 1j * omega * ell + 2.0
                return float(z)
        """, "QA205") == ["QA205"]

    def test_flags_int_of_complex_constructor(self, tmp_path):
        assert fired(tmp_path, """
            def narrowed(re, im):
                z = complex(re, im)
                return int(z)
        """, "QA205") == ["QA205"]

    def test_real_part_is_clean(self, tmp_path):
        assert fired(tmp_path, """
            def mag(omega, ell):
                z = 1j * omega * ell + 2.0
                return float(z.real)
        """, "QA205") == []

    def test_abs_is_clean(self, tmp_path):
        assert fired(tmp_path, """
            def mag(omega, ell):
                z = 1j * omega * ell + 2.0
                return float(abs(z))
        """, "QA205") == []

    def test_plain_float_conversion_is_clean(self, tmp_path):
        assert fired(tmp_path, """
            def widen(x):
                y = x * 2.5
                return float(y)
        """, "QA205") == []


class TestQA206SilentDegradation:
    def test_flags_unrecorded_fallback_in_public_function(self, tmp_path):
        assert fired(tmp_path, """
            def evaluate(x):
                try:
                    return 1.0 / x
                except Exception:
                    result = 0.0
                return result
        """, "QA206") == ["QA206"]

    def test_warned_fallback_is_clean(self, tmp_path):
        assert fired(tmp_path, """
            import warnings

            def evaluate(x):
                try:
                    return 1.0 / x
                except Exception:
                    warnings.warn("degraded to 0.0")
                    result = 0.0
                return result
        """, "QA206") == []

    def test_reraise_is_clean(self, tmp_path):
        assert fired(tmp_path, """
            def evaluate(x):
                try:
                    return 1.0 / x
                except Exception:
                    raise ValueError("bad x") from None
        """, "QA206") == []

    def test_record_call_is_clean(self, tmp_path):
        assert fired(tmp_path, """
            def evaluate(x, report):
                try:
                    return 1.0 / x
                except Exception:
                    report.record_downgrade("evaluate", "fallback to 0")
                    result = 0.0
                return result
        """, "QA206") == []

    def test_private_function_is_not_flagged(self, tmp_path):
        assert fired(tmp_path, """
            def _evaluate(x):
                try:
                    return 1.0 / x
                except Exception:
                    result = 0.0
                return result
        """, "QA206") == []

    def test_narrow_handler_is_clean(self, tmp_path):
        assert fired(tmp_path, """
            def evaluate(x):
                try:
                    return 1.0 / x
                except ZeroDivisionError:
                    result = 0.0
                return result
        """, "QA206") == []


class TestQA207UnboundedPoolWait:
    def test_flags_untimed_future_result(self, tmp_path):
        assert fired(tmp_path, """
            def gather(futures):
                return [fut.result() for fut in futures]
        """, "QA207") == ["QA207"]

    def test_flags_untimed_executor_map(self, tmp_path):
        assert fired(tmp_path, """
            def fan_out(executor, items):
                return list(executor.map(str, items))
        """, "QA207") == ["QA207"]

    def test_timeout_keyword_is_clean(self, tmp_path):
        assert fired(tmp_path, """
            def gather(futures, executor, items):
                rows = [fut.result(timeout=30.0) for fut in futures]
                rows += list(executor.map(str, items, timeout=30.0))
                return rows
        """, "QA207") == []

    def test_positional_timeout_is_clean(self, tmp_path):
        assert fired(tmp_path, """
            def first(future):
                return future.result(5.0)
        """, "QA207") == []

    def test_non_pool_receivers_are_not_flagged(self, tmp_path):
        # Name heuristic: a pandas-style .map() or an unrelated .result()
        # must not fire.
        assert fired(tmp_path, """
            def transform(series, query):
                values = series.map(abs)
                return values, query.result()
        """, "QA207") == []

    def test_ignore_comment_silences(self, tmp_path):
        assert fired(tmp_path, """
            def gather(fut):
                return fut.result()  # qa: ignore[QA207] -- bounded by caller alarm
        """, "QA207") == []

    def test_supervisor_module_is_exempt(self, tmp_path):
        # The supervisor's own waits are bounded by its watchdog killing
        # expired workers; the rule exempts exactly that module.
        pkg = tmp_path / "repro" / "resilience"
        pkg.mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        mod = pkg / "supervisor.py"
        mod.write_text(textwrap.dedent("""
            def drain(futures):
                return [fut.result() for fut in futures]
        """), encoding="utf-8")
        result = analyze_paths([mod], rules=["QA207"])
        assert [d.rule for d in result.report] == []


class TestQA208HotPathDensify:
    def _hot_module(self, tmp_path, source, rel="repro/circuit/linalg.py"):
        mod = tmp_path / rel
        mod.parent.mkdir(parents=True, exist_ok=True)
        for parent in (tmp_path / "repro", mod.parent):
            (parent / "__init__.py").write_text("", encoding="utf-8")
        mod.write_text(textwrap.dedent(source), encoding="utf-8")
        return mod

    def test_flags_densify_in_hot_path_module(self, tmp_path):
        mod = self._hot_module(tmp_path, """
            def assemble(g, c, omega):
                return g.toarray() + 1j * omega * c.todense()
        """)
        result = analyze_paths([mod], rules=["QA208"])
        assert [d.rule for d in result.report] == ["QA208", "QA208"]

    def test_flags_operator_to_dense(self, tmp_path):
        mod = self._hot_module(tmp_path, """
            def solve(op, b):
                import numpy as np
                return np.linalg.solve(op.to_dense(), b)
        """, rel="repro/loop/extractor.py")
        result = analyze_paths([mod], rules=["QA208"])
        assert [d.rule for d in result.report] == ["QA208"]

    def test_ignore_comment_silences(self, tmp_path):
        mod = self._hot_module(tmp_path, """
            def rescue(matrix):
                return matrix.todense()  # qa: ignore[QA208] -- size-guarded
        """)
        result = analyze_paths([mod], rules=["QA208"])
        assert [d.rule for d in result.report] == []

    def test_non_hot_module_is_not_flagged(self, tmp_path):
        # Densifying outside the solve path (e.g. extraction assembly,
        # io) is not this rule's business.
        assert fired(tmp_path, """
            def export(matrix):
                return matrix.toarray()
        """, "QA208") == []


class TestProjectPasses:
    def test_import_graph_links_fixture_modules(self, tmp_path):
        (tmp_path / "alpha.py").write_text(
            "import beta\n", encoding="utf-8"
        )
        (tmp_path / "beta.py").write_text("X = 1\n", encoding="utf-8")
        project = Project.load([tmp_path])
        assert "beta" in project.imports.get("alpha", set())
        assert "alpha" in project.imported_by.get("beta", set())

    def test_symbol_table_resolves_aliases(self, tmp_path):
        (tmp_path / "mod.py").write_text(
            "import numpy as np\n"
            "from numpy import interp as terp\n",
            encoding="utf-8",
        )
        project = Project.load([tmp_path])
        table = SymbolTable(project.get("mod"), project)
        assert table.resolve("np") == "numpy"
        assert table.resolve("terp") == "numpy.interp"

    def test_unparseable_file_yields_qa000(self, tmp_path):
        (tmp_path / "broken.py").write_text(
            "def broken(:\n", encoding="utf-8"
        )
        result = analyze_paths([tmp_path])
        assert [d.rule for d in result.report] == ["QA000"]

    def test_ported_syntax_rules_run_in_the_engine(self, tmp_path):
        pairs = run_rules(tmp_path, """
            import numpy as np

            def bad(a, opts=[]):
                return np.linalg.inv(a)
        """, ["QA101", "QA102"])
        assert sorted(r for r, _ in pairs) == ["QA101", "QA102"]
